//! Fused dot-product unit — the paper's future-work direction
//! ("the concept of mantissas represented in partial/full carry save
//! formats could be applied to other floating-point operations", Sec. V;
//! fused dot products are the classic instance \[9\][10]).
//!
//! `dot(terms) = Σ_i b_i · c_i` with **one** normalization at the very
//! end: every product is formed by the same integrated-rounding CS
//! multiplier as the FMA, aligned into a shared window anchored at the
//! largest product exponent, compressed by one big CSA tree, and
//! block-normalized once. Compared to a chain of FMAs this removes the
//! per-link block normalization *and* the serial dependence — all
//! products compress in parallel.

use crate::format::CsFmaFormat;
use crate::operand::CsOperand;
use crate::trace::{NopSink, TraceSink};
use csfma_bits::Bits;
use csfma_carrysave::reduce_to_cs;
use csfma_softfloat::{FpClass, SoftFloat};
use csfma_units::align::align_addend;
use csfma_units::block_mux::select_blocks;
use csfma_units::exponent::BiasedExp;
use csfma_units::multiplier::{apply_sign, multiply_cs_by_binary};
use csfma_units::rounding::round_up_from_block;
use csfma_units::zero_detect::leading_skippable_blocks;

/// A fused dot-product unit over a carry-save transport format.
///
/// ```
/// use csfma_core::{CsDotUnit, CsFmaFormat, CsOperand};
/// use csfma_softfloat::{FpFormat, Round, SoftFloat};
///
/// let unit = CsDotUnit::new(CsFmaFormat::PCS_55_ZD);
/// let sf = |v: f64| SoftFloat::from_f64(FpFormat::BINARY64, v);
/// let term = |b: f64, c: f64| (sf(b), CsOperand::from_ieee(&sf(c), CsFmaFormat::PCS_55_ZD));
/// let r = unit.dot(&[term(1.5, 2.0), term(-0.5, 4.0)]);
/// assert_eq!(r.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64(), 1.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CsDotUnit {
    format: CsFmaFormat,
}

impl CsDotUnit {
    /// Create a unit; the format's window must leave headroom for the
    /// term count (the left alignment blocks absorb the `log2(n)` growth
    /// of the sum).
    pub fn new(format: CsFmaFormat) -> Self {
        CsDotUnit { format }
    }

    /// The transport format.
    pub fn format(&self) -> &CsFmaFormat {
        &self.format
    }

    /// Largest number of terms the window headroom supports.
    pub fn max_terms(&self) -> usize {
        // keep two guard bits of the left region for the two-word sums
        1usize
            << (self.format.left_blocks * self.format.block_bits)
                .saturating_sub(2)
                .min(20)
    }

    /// Fused `Σ b_i · c_i`.
    ///
    /// # Panics
    /// If `terms` is empty or exceeds [`CsDotUnit::max_terms`].
    pub fn dot(&self, terms: &[(SoftFloat, CsOperand)]) -> CsOperand {
        self.dot_traced(terms, &mut NopSink)
    }

    /// Fused dot product with activity tracing.
    pub fn dot_traced(
        &self,
        terms: &[(SoftFloat, CsOperand)],
        sink: &mut dyn TraceSink,
    ) -> CsOperand {
        let f = &self.format;
        assert!(!terms.is_empty(), "empty dot product");
        assert!(
            terms.len() <= self.max_terms(),
            "too many dot terms for the window"
        );

        // exception wires
        if terms
            .iter()
            .any(|(b, c)| b.is_nan() || c.class() == FpClass::Nan)
        {
            return CsOperand::nan(*f);
        }
        let mut inf_sign: Option<bool> = None;
        for (b, c) in terms {
            let pclass = match (b.class(), c.class()) {
                (FpClass::Inf, FpClass::Zero) | (FpClass::Zero, FpClass::Inf) => {
                    return CsOperand::nan(*f)
                }
                (FpClass::Inf, _) | (_, FpClass::Inf) => FpClass::Inf,
                _ => FpClass::Normal,
            };
            if pclass == FpClass::Inf {
                let sign = b.sign()
                    ^ match c.class() {
                        FpClass::Normal => c.mant().resolve_signed_extended().sign_bit(),
                        _ => c.sign_hint(),
                    };
                match inf_sign {
                    None => inf_sign = Some(sign),
                    Some(s) if s != sign => return CsOperand::nan(*f),
                    _ => {}
                }
            }
        }
        if let Some(sign) = inf_sign {
            return CsOperand::inf(*f, sign);
        }

        let bb = f.block_bits;
        let w = f.window_bits();
        let nb = f.window_blocks();
        let fc = f.frac_bits() as i64;
        let right_off = (f.right_blocks * bb) as i64;

        // anchor: largest product exponent
        let live: Vec<&(SoftFloat, CsOperand)> = terms
            .iter()
            .filter(|(b, c)| b.class() == FpClass::Normal && c.class() == FpClass::Normal)
            .collect();
        if live.is_empty() {
            return CsOperand::zero(*f, false);
        }
        let e_anchor = live
            .iter()
            .map(|(b, c)| b.exp() as i64 + c.exp().unbiased() as i64)
            .max()
            .unwrap();
        let fb_b = live[0].0.format().frac_bits as i64;
        let wls = e_anchor - fc - fb_b - right_off;

        // per-term multipliers, aligned into the shared window
        let mut rows: Vec<Bits> = Vec::with_capacity(2 * live.len());
        for (b, c) in &live {
            let up_c = round_up_from_block(c.round());
            let b_sig = Bits::from_u64(f.b_sig_bits, b.significand());
            let mul = multiply_cs_by_binary(c.mant(), &b_sig, up_c);
            let product = apply_sign(mul.product, b.sign());
            let e_term = b.exp() as i64 + c.exp().unbiased() as i64;
            let shift = right_off + (e_term - e_anchor);
            let aligned = align_addend(&product, w, shift);
            debug_assert!(!aligned.dropped_high, "window headroom violated");
            rows.push(aligned.value.sum().clone());
            rows.push(aligned.value.carry().clone());
        }
        let reduced = reduce_to_cs(&rows, w);
        let window = reduced.cs;
        sink.record("win.sum", window.sum());
        sink.record("win.carry", window.carry());

        let window = match f.carry_spacing {
            Some(k) => window.carry_reduce(k).to_cs(),
            None => window,
        };

        // one block normalization at the very end (Zero Detector for all
        // formats: the dot unit is not latency-critical per link)
        let blocks = window.blocks(bb, nb);
        let skip = leading_skippable_blocks(&blocks, f.mant_blocks);
        let sel = select_blocks(&blocks, f.mant_blocks, skip);
        sink.record("res.sum", sel.result.sum());
        sink.record("res.carry", sel.result.carry());

        let e_r = (nb - sel.skip - f.mant_blocks) as i64 * bb as i64 + wls + fc;
        let sign_hint = sel.result.resolve_signed_extended().sign_bit();
        CsOperand::from_raw(
            *f,
            FpClass::Normal,
            sign_hint,
            sel.result,
            sel.round_data,
            BiasedExp::from_unbiased_saturating(e_r),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ulp_error_vs_exact;
    use csfma_softfloat::{ExactFloat, FpFormat, Round};
    use proptest::prelude::*;

    const B64: FpFormat = FpFormat::BINARY64;

    fn sf(v: f64) -> SoftFloat {
        SoftFloat::from_f64(B64, v)
    }

    fn term(fmt: CsFmaFormat, b: f64, c: f64) -> (SoftFloat, CsOperand) {
        (sf(b), CsOperand::from_ieee(&sf(c), fmt))
    }

    fn exact_dot(pairs: &[(f64, f64)]) -> ExactFloat {
        pairs.iter().fold(ExactFloat::zero(), |acc, &(b, c)| {
            acc.add(&ExactFloat::from_f64(b).mul(&ExactFloat::from_f64(c)))
        })
    }

    #[test]
    fn small_dot_products() {
        for fmt in [CsFmaFormat::PCS_55_ZD, CsFmaFormat::FCS_29_LZA] {
            let unit = CsDotUnit::new(fmt);
            let terms = vec![
                term(fmt, 1.5, 2.0),
                term(fmt, -0.5, 4.0),
                term(fmt, 3.0, 1.0),
            ];
            let r = unit.dot(&terms);
            let got = r.to_ieee(B64, Round::NearestEven).to_f64();
            assert_eq!(got, 1.5 * 2.0 - 0.5 * 4.0 + 3.0, "{}", fmt.name);
        }
    }

    #[test]
    fn cancellation_in_the_window_is_exact() {
        // Σ = a*b - a*b + tiny: a fused dot keeps `tiny` exactly; a chain
        // of discrete ops may wash it out
        let fmt = CsFmaFormat::FCS_29_LZA;
        let unit = CsDotUnit::new(fmt);
        let tiny = 2f64.powi(-40);
        let terms = vec![
            term(fmt, 1.1, 3.3),
            term(fmt, -1.1, 3.3),
            term(fmt, tiny, 1.0),
        ];
        let r = unit.dot(&terms);
        assert_eq!(r.to_ieee(B64, Round::NearestEven).to_f64(), tiny);
    }

    #[test]
    fn specials() {
        let fmt = CsFmaFormat::PCS_55_ZD;
        let unit = CsDotUnit::new(fmt);
        let inf = (
            SoftFloat::inf(B64, false),
            CsOperand::from_ieee(&sf(2.0), fmt),
        );
        let neg_inf = (
            SoftFloat::inf(B64, true),
            CsOperand::from_ieee(&sf(2.0), fmt),
        );
        let num = term(fmt, 1.0, 1.0);
        assert!(unit
            .dot(&[inf.clone(), num.clone()])
            .to_ieee(B64, Round::NearestEven)
            .is_inf());
        assert!(unit
            .dot(&[inf.clone(), neg_inf])
            .to_ieee(B64, Round::NearestEven)
            .is_nan());
        let inf_times_zero = (SoftFloat::inf(B64, false), CsOperand::zero(fmt, false));
        assert!(unit
            .dot(&[inf_times_zero, num.clone()])
            .to_ieee(B64, Round::NearestEven)
            .is_nan());
        // all-zero terms
        let z = (sf(0.0), CsOperand::from_ieee(&sf(5.0), fmt));
        let r = unit.dot(&[z]);
        assert!(r.to_ieee(B64, Round::NearestEven).is_zero());
    }

    #[test]
    fn dot_beats_fma_chain_on_scattered_exponents() {
        // terms of very different magnitudes: the fused window keeps
        // everything; the FMA chain truncates at each link's round block
        let fmt = CsFmaFormat::PCS_55_ZD;
        let unit = CsDotUnit::new(fmt);
        let pairs: Vec<(f64, f64)> = (0..8)
            .map(|i| (2f64.powi(-12 * i) * 1.7, 0.9 + 0.01 * i as f64))
            .collect();
        let terms: Vec<_> = pairs.iter().map(|&(b, c)| term(fmt, b, c)).collect();
        let r = unit.dot(&terms);
        let exact = exact_dot(&pairs);
        let err = ulp_error_vs_exact(&r.exact_value(), &exact);
        assert!(err < 1e-3, "fused dot error {err} ulp");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn prop_dot_double_envelope(
            pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..10),
        ) {
            for fmt in [CsFmaFormat::PCS_55_ZD, CsFmaFormat::FCS_29_LZA] {
                let unit = CsDotUnit::new(fmt);
                let terms: Vec<_> = pairs.iter().map(|&(b, c)| term(fmt, b, c)).collect();
                let r = unit.dot(&terms);
                let exact = exact_dot(&pairs);
                let diff = r.exact_value().sub(&exact);
                if diff.is_zero() {
                    continue;
                }
                // one double ulp at the largest term's magnitude
                let dom = pairs
                    .iter()
                    .map(|&(b, c)| (b * c).abs())
                    .fold(1e-300, f64::max);
                let envelope = dom.log2().floor() as i64 - 50; // n-term slack
                prop_assert!(
                    diff.msb_exp() <= envelope,
                    "{}: err 2^{} vs envelope 2^{}",
                    fmt.name, diff.msb_exp(), envelope
                );
            }
        }
    }
}
