//! Multi-graph batch evaluation: one scheduler invocation across many
//! independent `(graph, rows)` requests.
//!
//! [`eval_many`] pipelines compile → cache lookup → eval through the
//! work-stealing scheduler (`csfma_core::batch`): first every request's
//! compile/cache probe runs as its own work item, then the row chunks of
//! *all* requests are flattened into a single item list driven by one
//! stealing deque per worker. A pathologically heavy request (a deep PCS
//! graph on the bit backend, say) therefore cannot serialize the batch:
//! its chunks sit in the same index space as everyone else's and get
//! stolen like any other work.
//!
//! Determinism: each request's output buffer is written by chunk index,
//! exactly as [`Tape::eval_batch`] writes it, so every per-request
//! result is byte-identical to a standalone `eval_batch` call at any
//! thread count — `tests/scheduler.rs` locks this down with digest
//! comparisons under forced skew.

use crate::cdfg::Cdfg;
use crate::compile::{
    compile_cached_with, CompileError, CompileOptions, PooledChunkScratch, Tape, TapeBackend,
};
use csfma_core::batch::{par_chunks_indexed, steal_indexed, CHUNK_ROWS};
use csfma_core::SchedStats;
use csfma_obs::Profiler;
use std::collections::HashMap;
use std::sync::Arc;

/// One `(graph, rows)` request for [`eval_many`].
#[derive(Clone, Copy, Debug)]
pub struct EvalManyRequest<'a> {
    /// The datapath graph to compile (through the process tape cache).
    pub graph: &'a Cdfg,
    /// Evaluation backend for this request.
    pub backend: TapeBackend,
    /// Row-major stimulus, `n · num_inputs` long.
    pub rows: &'a [f64],
    /// Compile options (cache key includes them).
    pub options: CompileOptions,
}

impl<'a> EvalManyRequest<'a> {
    /// A request with default [`CompileOptions`].
    pub fn new(graph: &'a Cdfg, backend: TapeBackend, rows: &'a [f64]) -> Self {
        EvalManyRequest {
            graph,
            backend,
            rows,
            options: CompileOptions::default(),
        }
    }
}

/// One request's result: the compiled (cached) tape and its row-major
/// outputs, byte-identical to `tape.eval_batch(backend, rows, _)`.
#[derive(Clone, Debug)]
pub struct EvalManyOutput {
    /// Row-major outputs, `n · num_outputs` long.
    pub outputs: Vec<f64>,
    /// The tape the request compiled to (shared via the process cache).
    pub tape: Arc<Tape>,
}

/// Evaluate many independent `(graph, rows)` requests with up to
/// `threads` workers (module docs). Returns one result per request, in
/// request order; a request whose graph fails the compile gate carries
/// its [`CompileError`] without disturbing its neighbors.
///
/// # Panics
/// If a successfully compiled request violates the [`Tape::eval_batch`]
/// row contract: a tape with no inputs, or `rows.len()` not a multiple
/// of its `num_inputs()`.
pub fn eval_many(
    reqs: &[EvalManyRequest],
    threads: usize,
) -> Vec<Result<EvalManyOutput, CompileError>> {
    eval_many_with_stats(reqs, threads).0
}

/// [`eval_many`] wrapped in an `eval_many` stage span, with request,
/// row and scheduler claim/steal counters recorded into `prof`. The
/// results are byte-identical to the unprofiled call.
pub fn eval_many_profiled(
    reqs: &[EvalManyRequest],
    threads: usize,
    prof: &mut Profiler,
) -> Vec<Result<EvalManyOutput, CompileError>> {
    let tok = prof.enter("eval_many");
    let ((results, sched), wall_us) = csfma_obs::time_us(|| eval_many_with_stats(reqs, threads));
    prof.exit(tok);
    let rows_total: usize = results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|o| o.outputs.len() / o.tape.num_outputs().max(1))
        .sum();
    prof.set_counter("requests", reqs.len() as f64);
    prof.set_counter(
        "compile_errors",
        results.iter().filter(|r| r.is_err()).count() as f64,
    );
    prof.set_counter("rows", rows_total as f64);
    if wall_us > 0.0 {
        prof.set_counter("rows_per_sec", rows_total as f64 / (wall_us * 1e-6));
    }
    prof.set_counter("threads", threads as f64);
    prof.set_counter("sched_workers", sched.workers as f64);
    prof.set_counter(
        "sched_grain_rows",
        (sched.grain as usize * CHUNK_ROWS) as f64,
    );
    prof.set_counter("sched_claims", sched.claims as f64);
    prof.set_counter("sched_steals", sched.steals as f64);
    prof.set_counter("sched_steal_misses", sched.steal_misses as f64);
    results
}

fn eval_many_with_stats(
    reqs: &[EvalManyRequest],
    threads: usize,
) -> (Vec<Result<EvalManyOutput, CompileError>>, SchedStats) {
    // ---- stage 1: compile / cache-probe, one work item per request ----
    let mut tapes: Vec<Option<Result<Arc<Tape>, CompileError>>> = vec![None; reqs.len()];
    par_chunks_indexed(
        &mut tapes,
        1,
        threads,
        || (),
        |_, i, slot| {
            slot[0] = Some(compile_cached_with(reqs[i].graph, reqs[i].options));
        },
    );
    let tapes: Vec<Result<Arc<Tape>, CompileError>> = tapes
        .into_iter()
        .map(|t| t.expect("compile stage skipped a request"))
        .collect();

    // ---- stage 2: every request's chunks through one stealing deque ----
    // request-major item order, so the initial per-worker segments are
    // contiguous runs of work and stealing only kicks in under skew
    let mut outs: Vec<Vec<f64>> = Vec::with_capacity(reqs.len());
    let mut items: Vec<(u32, u32)> = Vec::new();
    for (r, (req, tape)) in reqs.iter().zip(tapes.iter()).enumerate() {
        let Ok(tape) = tape else {
            outs.push(Vec::new());
            continue;
        };
        let ni = tape.num_inputs();
        assert!(ni > 0, "eval_many request {r}: tape has no inputs");
        assert_eq!(
            req.rows.len() % ni,
            0,
            "eval_many request {r}: rows not a multiple of num_inputs"
        );
        let n = req.rows.len() / ni;
        let no = tape.num_outputs();
        outs.push(vec![0.0f64; n * no]);
        if no > 0 {
            for c in 0..n.div_ceil(CHUNK_ROWS) {
                items.push((r as u32, c as u32));
            }
        }
    }
    let bases: Vec<usize> = outs.iter_mut().map(|o| o.as_mut_ptr() as usize).collect();

    let stats = steal_indexed(
        items.len(),
        threads,
        HashMap::<usize, PooledChunkScratch>::new,
        |scratch_by_req, k| {
            let (r, c) = items[k];
            let (r, c) = (r as usize, c as usize);
            let req = &reqs[r];
            let tape = tapes[r].as_ref().expect("item for failed request");
            let no = tape.num_outputs();
            let n = req.rows.len() / tape.num_inputs();
            let base_row = c * CHUNK_ROWS;
            let len = CHUNK_ROWS.min(n - base_row);
            // SAFETY: items are claimed exactly once (`steal_indexed`),
            // distinct items address disjoint `[base_row·no, …)` windows
            // of distinct per-request buffers, and `outs` is neither
            // moved nor resized while the scheduler runs.
            let chunk = unsafe {
                std::slice::from_raw_parts_mut((bases[r] as *mut f64).add(base_row * no), len * no)
            };
            let scratch = scratch_by_req
                .entry(r)
                .or_insert_with(|| tape.chunk_scratch());
            tape.eval_chunk(req.backend, req.rows, base_row, len, chunk, scratch);
        },
    );

    let results = tapes
        .into_iter()
        .zip(outs)
        .map(|(tape, outputs)| tape.map(|tape| EvalManyOutput { outputs, tape }))
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::{fuse_critical_paths, FusionConfig};
    use crate::parse_program;
    use crate::FmaKind;

    fn stimulus(n_vals: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n_vals)
            .map(|_| {
                s ^= s >> 27;
                s = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
                ((s >> 40) as f64) * 0.125 - 1_048_576.0
            })
            .collect()
    }

    #[test]
    fn matches_individual_eval_batch_bitwise() {
        let g1 = parse_program("in a, b, c, d;\nout x = a*b + c*d;\n").unwrap();
        let g2 = parse_program("in a, b;\nout y = a + b * 3.5;\n").unwrap();
        let fused = fuse_critical_paths(&g1, &FusionConfig::new(FmaKind::Pcs)).fused;
        let rows1 = stimulus(4 * 97, 1);
        let rows2 = stimulus(2 * 130, 2);
        let rows3 = stimulus(4 * 65, 3);
        let reqs = [
            EvalManyRequest::new(&g1, TapeBackend::F64, &rows1),
            EvalManyRequest::new(&g2, TapeBackend::BitAccurate, &rows2),
            EvalManyRequest::new(&fused, TapeBackend::BitAccurate, &rows3),
        ];
        for threads in [1, 4, 8] {
            let results = eval_many(&reqs, threads);
            for (req, res) in reqs.iter().zip(&results) {
                let out = &res.as_ref().unwrap().outputs;
                let tape = &res.as_ref().unwrap().tape;
                let want = tape.eval_batch(req.backend, req.rows, 1);
                assert_eq!(want.len(), out.len());
                assert!(
                    want.iter()
                        .zip(out.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "eval_many diverged from eval_batch at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn compile_error_is_isolated_to_its_request() {
        use crate::Op;
        let good = parse_program("in a, b;\nout x = a * b;\n").unwrap();
        // D001: one-armed adder planted behind the validator's back
        let mut bad = crate::Cdfg::new();
        let a = bad.input("a");
        bad.push_unchecked(Op::Add, vec![a]);
        let rows = stimulus(2 * 10, 7);
        let bad_rows = stimulus(10, 8);
        let reqs = [
            EvalManyRequest::new(&good, TapeBackend::F64, &rows),
            EvalManyRequest::new(&bad, TapeBackend::F64, &bad_rows),
            EvalManyRequest::new(&good, TapeBackend::BitAccurate, &rows),
        ];
        let results = eval_many(&reqs, 4);
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "gate failure must surface per-request");
        assert!(results[2].is_ok());
        let tape = results[0].as_ref().unwrap().tape.clone();
        let want = tape.eval_batch(TapeBackend::F64, &rows, 1);
        assert_eq!(results[0].as_ref().unwrap().outputs, want);
    }

    #[test]
    fn empty_request_list_is_fine() {
        assert!(eval_many(&[], 8).is_empty());
    }
}
