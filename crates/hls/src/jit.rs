//! Dependency-free native code generation for the IEEE fast path.
//!
//! [`compile_module`] lowers a validated [`Tape`] to executable machine
//! code — x86-64 (SSE2 scalar `movsd`/`addsd`/`mulsd`, plus
//! `vfmadd213sd` in [`JitSemantics::F64`] mode when FMA3 is detected at
//! runtime) or aarch64 (`fmadd`) — in an mmap'd W^X code buffer. The
//! emitted function evaluates **one row** and returns a bail flag; see
//! `docs/JIT.md` for the ABI, the W^X policy and the bailout contract.
//!
//! # Semantics and the bailout contract
//!
//! [`JitSemantics::Bit`] reproduces the bit-accurate interpreter
//! ([`TapeBackend::BitAccurate`](crate::TapeBackend::BitAccurate))
//! exactly, by construction:
//!
//! * only scalar IEEE instructions are lowered — a tape containing any
//!   fused carry-save instruction (`Fma`/`IeeeToCs`/`CsToIeee`) refuses
//!   to build a module and the whole batch keeps the behavioral path;
//! * every `LoadInput` is guarded: if canonicalization would alter the
//!   value (NaN or subnormal input) the row bails to the interpreter;
//! * every **unpromoted** arithmetic result is guarded with exactly the
//!   soft-float fallback window of `csfma_softfloat::batch` (NaN, or
//!   nonzero with magnitude ≤ `f64::MIN_POSITIVE`) — the row bails
//!   precisely when the interpreter would have left the hosted fast
//!   path;
//! * instructions promoted by the value-range analysis
//!   ([`Tape::set_promoted`](crate::Tape::set_promoted), DESIGN.md §16)
//!   run guard-free, which is sound because the range proof shows the
//!   guard can never fire.
//!
//! Together these maintain the invariant that no NaN and no nonzero
//! subnormal ever exists in the native register file, so unguarded
//! negation (a raw sign flip) and native ±∞ propagation are exact.
//!
//! [`JitSemantics::F64`] reproduces the host-double interpreter
//! ([`TapeBackend::F64`](crate::TapeBackend::F64)): no guards, both
//! register banks lowered, `Fma` as a native fused multiply-add. It
//! exists to exercise the FMA encodings and is compared against the
//! `f64` backend by the differential suite.
//!
//! # Disabling
//!
//! Setting the environment variable `CSFMA_JIT=off` (or `0`) before the
//! first evaluation disables module construction process-wide;
//! `--backend jit` then falls back to the interpreter for every row.

use crate::compile::{Instr, Tape};
use csfma_verify::{Diagnostic, Rule, Span};
use std::fmt;
use std::sync::OnceLock;

/// `2 · f64::MIN_POSITIVE.to_bits()` — the sign-stripped (`bits << 1`)
/// encoding of the smallest normal magnitude. A value `v` with
/// `s = v.to_bits() << 1` is subnormal iff `0 < s < SUB_WINDOW`, and
/// triggers the interpreter's soft-float fallback iff
/// `s != 0 && (s <= SUB_WINDOW || s > INF_WINDOW)`.
const SUB_WINDOW: u64 = 0x0020_0000_0000_0000;
/// `2 · f64::INFINITY.to_bits()` — sign-stripped infinity; anything
/// above is a NaN.
const INF_WINDOW: u64 = 0xFFE0_0000_0000_0000;

/// Which interpreter the emitted code must be bit-identical to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JitSemantics {
    /// Bit-accurate semantics with per-row bailout guards; the module
    /// backing [`TapeBackend::Jit`](crate::TapeBackend::Jit).
    Bit,
    /// Host-double semantics, guard-free, with native fused
    /// multiply-add; a test-facing mode mirroring
    /// [`TapeBackend::F64`](crate::TapeBackend::F64).
    F64,
}

impl fmt::Display for JitSemantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitSemantics::Bit => write!(f, "bit"),
            JitSemantics::F64 => write!(f, "f64"),
        }
    }
}

/// The emitted per-row entry point: `fn(row, out, consts) -> bail`.
/// Returns 0 when the row completed natively, nonzero when it must be
/// re-evaluated by the interpreter.
type RowFn = unsafe extern "C" fn(*const f64, *mut f64, *const f64) -> u64;

/// True when `CSFMA_JIT` does not disable the JIT (read once, cached).
pub fn jit_env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("CSFMA_JIT").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

/// True when this build can emit and run native code at all: a unix
/// host on x86-64 or aarch64, with the JIT not disabled by
/// [`jit_env_enabled`]. When false, `--backend jit` is pure interpreter
/// fallback (still bit-exact, just not faster).
pub fn jit_available() -> bool {
    cfg!(all(
        unix,
        any(target_arch = "x86_64", target_arch = "aarch64")
    )) && jit_env_enabled()
}

// ---------------------------------------------------------------------
// W^X code buffer
// ---------------------------------------------------------------------

#[cfg(unix)]
mod mem {
    //! Raw `mmap`/`mprotect`/`munmap` bindings — the workspace is
    //! dependency-free, and std already links libc on unix.
    use core::ffi::c_void;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const PROT_EXEC: i32 = 4;
    const MAP_PRIVATE: i32 = 2;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    const MAP_ANON: i32 = 0x20;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const MAP_ANON: i32 = 0x1000;

    /// An anonymous executable mapping holding one emitted function.
    /// W^X discipline: the page is never writable and executable at the
    /// same time — it is filled while `PROT_READ|PROT_WRITE` and flipped
    /// to `PROT_READ|PROT_EXEC` before the entry pointer ever escapes.
    pub struct CodeBuf {
        ptr: *mut u8,
        len: usize,
    }

    impl CodeBuf {
        /// Map, fill and seal a code buffer. `None` if the kernel
        /// refuses the mapping (e.g. a no-exec mount policy).
        pub fn new(code: &[u8]) -> Option<CodeBuf> {
            if code.is_empty() {
                return None;
            }
            let len = code.len();
            // SAFETY: anonymous private mapping, no fd, no aliasing.
            let ptr = unsafe {
                mmap(
                    core::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANON,
                    -1,
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return None;
            }
            let ptr = ptr as *mut u8;
            // SAFETY: we own the fresh RW mapping of `len` bytes.
            unsafe { core::ptr::copy_nonoverlapping(code.as_ptr(), ptr, len) };
            // SAFETY: flipping our own mapping to read+exec.
            if unsafe { mprotect(ptr as *mut c_void, len, PROT_READ | PROT_EXEC) } != 0 {
                unsafe { munmap(ptr as *mut c_void, len) };
                return None;
            }
            #[cfg(target_arch = "aarch64")]
            {
                extern "C" {
                    fn __clear_cache(start: *mut core::ffi::c_char, end: *mut core::ffi::c_char);
                }
                // SAFETY: flushing the icache over our own mapping.
                unsafe {
                    __clear_cache(ptr as *mut _, ptr.add(len) as *mut _);
                }
            }
            Some(CodeBuf { ptr, len })
        }

        /// The sealed entry point.
        pub fn entry(&self) -> *const u8 {
            self.ptr
        }

        /// Mapped length in bytes.
        pub fn len(&self) -> usize {
            self.len
        }
    }

    impl Drop for CodeBuf {
        fn drop(&mut self) {
            // SAFETY: unmapping the mapping we created; the module that
            // owns the buffer is the only holder of the entry pointer.
            unsafe { munmap(self.ptr as *mut c_void, self.len) };
        }
    }

    // SAFETY: the mapping is immutable (RX) after construction.
    unsafe impl Send for CodeBuf {}
    // SAFETY: as above — concurrent readers/executors are fine.
    unsafe impl Sync for CodeBuf {}
}

// ---------------------------------------------------------------------
// Module
// ---------------------------------------------------------------------

/// A compiled native module for one [`Tape`]: one per-row function in a
/// sealed W^X buffer, plus the constant pool it reads and the
/// pseudo-assembly dump `csfma-run --dump-jit` prints.
#[cfg(unix)]
pub struct JitModule {
    buf: mem::CodeBuf,
    /// The constant pool the emitted code indexes (canonicalized for
    /// [`JitSemantics::Bit`], raw for [`JitSemantics::F64`]). Owned so
    /// the module never dangles into a dropped tape.
    consts: Vec<f64>,
    semantics: JitSemantics,
    num_inputs: usize,
    num_outputs: usize,
    native_instrs: usize,
    guards: usize,
    dump: String,
}

#[cfg(unix)]
impl JitModule {
    /// Evaluate one row natively. `true` means `out` now holds the
    /// row's outputs, bit-identical to the interpreter; `false` means a
    /// guard fired and the caller must re-evaluate the row on the
    /// interpreter (any partial stores in `out` may be overwritten).
    pub fn run_row(&self, row: &[f64], out: &mut [f64]) -> bool {
        assert_eq!(row.len(), self.num_inputs, "jit row arity mismatch");
        assert_eq!(out.len(), self.num_outputs, "jit output arity mismatch");
        // SAFETY: `entry` points at a sealed, immutable function emitted
        // for exactly this tape shape; the pointers are valid for the
        // asserted lengths and the function writes only `out`.
        let f: RowFn = unsafe { std::mem::transmute(self.buf.entry()) };
        unsafe { f(row.as_ptr(), out.as_mut_ptr(), self.consts.as_ptr()) == 0 }
    }

    /// Which interpreter this module is bit-identical to.
    pub fn semantics(&self) -> JitSemantics {
        self.semantics
    }

    /// Tape instructions lowered to native code.
    pub fn native_instr_count(&self) -> usize {
        self.native_instrs
    }

    /// Bailout guards emitted (load guards + unpromoted result guards).
    pub fn guard_count(&self) -> usize {
        self.guards
    }

    /// Emitted machine-code size in bytes.
    pub fn code_len(&self) -> usize {
        self.buf.len()
    }

    /// The pseudo-assembly dump (`csfma-run --dump-jit`).
    pub fn dump(&self) -> &str {
        &self.dump
    }
}

#[cfg(unix)]
impl fmt::Debug for JitModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JitModule")
            .field("semantics", &self.semantics)
            .field("native_instrs", &self.native_instrs)
            .field("guards", &self.guards)
            .field("code_len", &self.buf.len())
            .finish()
    }
}

/// Non-unix stand-in so `Tape` always has the field type; never
/// constructed ([`compile_module`] returns `None`).
#[cfg(not(unix))]
#[derive(Debug)]
pub struct JitModule {}

#[cfg(not(unix))]
impl JitModule {
    /// Never reachable on this platform.
    pub fn run_row(&self, _row: &[f64], _out: &mut [f64]) -> bool {
        false
    }

    /// Never reachable on this platform.
    pub fn dump(&self) -> &str {
        ""
    }

    /// Never reachable on this platform.
    pub fn native_instr_count(&self) -> usize {
        0
    }

    /// Never reachable on this platform.
    pub fn guard_count(&self) -> usize {
        0
    }

    /// Never reachable on this platform.
    pub fn code_len(&self) -> usize {
        0
    }
}

/// Why a tape cannot be lowered natively (all-rows fallback).
/// Returned by [`jit_refusal`]; `lint_jit` turns it into a J001
/// warning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JitRefusal {
    /// The tape contains fused carry-save instructions
    /// (`Fma`/`IeeeToCs`/`CsToIeee`); bit semantics keep the behavioral
    /// path for them.
    FusedInstrs(usize),
    /// A constant in the pool canonicalizes to NaN — a NaN in the
    /// native register file would break the no-NaN invariant the
    /// guard scheme relies on.
    NanConst,
}

impl fmt::Display for JitRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitRefusal::FusedInstrs(n) => {
                write!(
                    f,
                    "{n} fused carry-save instruction(s) keep the behavioral path"
                )
            }
            JitRefusal::NanConst => {
                write!(f, "a NaN constant cannot enter the native register file")
            }
        }
    }
}

/// Structural reasons `compile_module(tape, Bit)` refuses, independent
/// of host architecture and environment. `None` means the tape is
/// lowerable (the module may still be absent at runtime if the
/// platform or `CSFMA_JIT` forbids it).
pub fn jit_refusal(tape: &Tape) -> Option<JitRefusal> {
    let fused = tape
        .instrs()
        .iter()
        .filter(|i| {
            matches!(
                i,
                Instr::Fma { .. } | Instr::IeeeToCs { .. } | Instr::CsToIeee { .. }
            )
        })
        .count();
    if fused > 0 {
        return Some(JitRefusal::FusedInstrs(fused));
    }
    if tape.consts_canonical.iter().any(|c| c.is_nan()) {
        return Some(JitRefusal::NanConst);
    }
    None
}

/// J001 lint: warn when a `--backend jit` evaluation of this tape would
/// bail more than half its rows to the interpreter. The static analysis
/// covers the worst case — a tape that refuses to build a module
/// ([`jit_refusal`]) bails 100% of rows by construction.
pub fn lint_jit(tape: &Tape) -> Vec<Diagnostic> {
    match jit_refusal(tape) {
        Some(JitRefusal::FusedInstrs(fused)) => vec![Diagnostic::warning(
            Rule::JitBailoutRate,
            Span::Global,
            format!(
                "every row of a `--backend jit` evaluation would fall back to the \
                 interpreter (100% > the 50% advisory threshold): {fused} fused \
                 carry-save instruction(s) keep the behavioral path"
            ),
        )],
        Some(JitRefusal::NanConst) => vec![Diagnostic::warning(
            Rule::JitBailoutRate,
            Span::Global,
            "every row of a `--backend jit` evaluation would fall back to the \
             interpreter (100% > the 50% advisory threshold): a NaN constant \
             cannot enter the native register file"
                .to_string(),
        )],
        None => Vec::new(),
    }
}

/// Lower `tape` to a native module with the given semantics. `None`
/// when the tape is not lowerable ([`jit_refusal`] for `Bit`; for
/// `F64`, hardware FMA is additionally required when the tape contains
/// fused instructions), when the platform cannot execute emitted code,
/// or when `CSFMA_JIT` disables the JIT. A `None` is never an error:
/// callers fall back to the interpreter, which is always correct.
pub fn compile_module(tape: &Tape, semantics: JitSemantics) -> Option<JitModule> {
    if !jit_available() {
        return None;
    }
    #[cfg(all(unix, target_arch = "x86_64"))]
    {
        return x86::emit(tape, semantics).and_then(|e| seal(tape, semantics, e));
    }
    #[cfg(all(unix, target_arch = "aarch64"))]
    {
        return a64::emit(tape, semantics).and_then(|e| seal(tape, semantics, e));
    }
    #[allow(unreachable_code)]
    {
        let _ = (tape, semantics);
        None
    }
}

/// Emitter output: machine code, dump text, native instruction count,
/// guard count.
#[cfg(unix)]
struct Emitted {
    code: Vec<u8>,
    dump: String,
    native_instrs: usize,
    guards: usize,
}

#[cfg(unix)]
fn seal(tape: &Tape, semantics: JitSemantics, e: Emitted) -> Option<JitModule> {
    let buf = mem::CodeBuf::new(&e.code)?;
    let consts = match semantics {
        JitSemantics::Bit => tape.consts_canonical.clone(),
        JitSemantics::F64 => tape.consts.clone(),
    };
    Some(JitModule {
        buf,
        consts,
        semantics,
        num_inputs: tape.num_inputs(),
        num_outputs: tape.num_outputs(),
        native_instrs: e.native_instrs,
        guards: e.guards,
        dump: e.dump,
    })
}

/// Where a tape register slot lives in the native frame.
#[cfg(unix)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    /// A hardware FP register (xmm*N* / d*N*).
    Reg(u8),
    /// A stack spill at `[sp + byte_offset]`.
    Spill(u32),
}

// ---------------------------------------------------------------------
// x86-64 emitter
// ---------------------------------------------------------------------

#[cfg(all(unix, target_arch = "x86_64"))]
mod x86 {
    //! System-V x86-64 emitter. ABI of the emitted function:
    //! `rdi` = row pointer, `rsi` = out pointer, `rdx` = consts pointer;
    //! returns `rax` (0 = ok, 1 = bail). Register plan: tape slots
    //! 0..=12 live in `xmm0`..=`xmm12`, further slots spill to the
    //! stack frame; `xmm13` is the FMA multiplicand temp, `xmm14` holds
    //! the sign mask, `xmm15` is the working register every result
    //! passes through. `r10`/`r11` hold the guard window constants and
    //! `rax` is the guard scratch. All of these are caller-saved, so
    //! the function needs no save/restore beyond its `rsp` frame.

    use super::{Emitted, JitSemantics, Loc, INF_WINDOW, SUB_WINDOW};
    use crate::compile::{Instr, Tape};
    use std::fmt::Write as _;

    /// Slots resident in xmm registers; the rest spill.
    const REG_SLOTS: u32 = 13;
    const RDI: u8 = 7;
    const RSI: u8 = 6;
    const RDX: u8 = 2;
    const RSP: u8 = 4;

    struct Asm {
        code: Vec<u8>,
        dump: String,
        bail_fixups: Vec<usize>,
        guards: usize,
    }

    impl Asm {
        fn put(&mut self, bytes: &[u8]) {
            self.code.extend_from_slice(bytes);
        }

        /// `modrm(mod=10, reg, rm=base) disp32`, with the SIB byte rsp
        /// addressing requires.
        fn mem(&mut self, reg: u8, base: u8, disp: u32) {
            self.put(&[0x80 | ((reg & 7) << 3) | (base & 7)]);
            if base & 7 == RSP {
                self.put(&[0x24]);
            }
            self.put(&disp.to_le_bytes());
        }

        /// SSE op with a memory operand: `prefix [REX] 0F op reg, [base+disp]`.
        fn sse_mem(&mut self, prefix: u8, op: u8, reg: u8, base: u8, disp: u32) {
            self.put(&[prefix]);
            if reg >= 8 {
                self.put(&[0x44]); // REX.R
            }
            self.put(&[0x0F, op]);
            self.mem(reg, base, disp);
        }

        /// SSE op, register-register: `prefix [REX] 0F op reg, rm`.
        fn sse_rr(&mut self, prefix: u8, op: u8, reg: u8, rm: u8) {
            self.put(&[prefix]);
            let rex = 0x40 | (u8::from(reg >= 8) << 2) | u8::from(rm >= 8);
            if rex != 0x40 {
                self.put(&[rex]);
            }
            self.put(&[0x0F, op, 0xC0 | ((reg & 7) << 3) | (rm & 7)]);
        }

        /// Copy a slot's value into xmm register `x`.
        fn load_slot(&mut self, x: u8, loc: Loc) {
            match loc {
                Loc::Reg(r) if r == x => {}
                Loc::Reg(r) => self.sse_rr(0x66, 0x28, x, r), // movapd x, r
                Loc::Spill(off) => self.sse_mem(0xF2, 0x10, x, RSP, off), // movsd
            }
        }

        /// Copy xmm register `x` into a slot.
        fn store_slot(&mut self, x: u8, loc: Loc) {
            match loc {
                Loc::Reg(r) if r == x => {}
                Loc::Reg(r) => self.sse_rr(0x66, 0x28, r, x),
                Loc::Spill(off) => self.sse_mem(0xF2, 0x11, x, RSP, off),
            }
        }

        /// Arithmetic `op xmm15, <slot>` (addsd/subsd/mulsd/divsd).
        fn arith15(&mut self, op: u8, b: Loc) {
            match b {
                Loc::Reg(r) => self.sse_rr(0xF2, op, 15, r),
                Loc::Spill(off) => self.sse_mem(0xF2, op, 15, RSP, off),
            }
        }

        /// `xorpd xmm15, xmm14` — flip the sign bit.
        fn flip_sign15(&mut self) {
            self.put(&[0x66, 0x45, 0x0F, 0x57, 0xFE]);
        }

        /// Record a 4-byte rel32 to be patched to the bail label.
        fn bail_rel32(&mut self) {
            self.bail_fixups.push(self.code.len());
            self.put(&[0, 0, 0, 0]);
        }

        /// Emit a bailout guard over the value in `xmm15`.
        ///
        /// Computes `s = value_bits << 1` and bails when
        /// `s != 0 && (s <cmp> SUB_WINDOW || s > INF_WINDOW)` where
        /// `<cmp>` is `<` for the load window (canonicalize would alter
        /// the value: subnormal or NaN) and `<=` for the result window
        /// (the interpreter's exact soft-float fallback predicate).
        fn guard15(&mut self, result_window: bool) {
            self.put(&[0x66, 0x4C, 0x0F, 0x7E, 0xF8]); // movq rax, xmm15
            self.put(&[0x48, 0x01, 0xC0]); // add rax, rax
            self.put(&[0x48, 0x85, 0xC0]); // test rax, rax
            self.put(&[0x74, 18]); // je past both compare/branch pairs
            self.put(&[0x4C, 0x39, 0xD0]); // cmp rax, r10
            self.put(&[0x0F, if result_window { 0x86 } else { 0x82 }]); // jbe/jb bail
            self.bail_rel32();
            self.put(&[0x4C, 0x39, 0xD8]); // cmp rax, r11
            self.put(&[0x0F, 0x87]); // ja bail
            self.bail_rel32();
            self.guards += 1;
        }

        /// `vfmadd213sd xmm15, xmm_m, <slot>`:
        /// `xmm15 = xmm_m * xmm15 + <slot>`.
        fn vfmadd213sd_15(&mut self, m: u8, src3: Loc) {
            match src3 {
                Loc::Reg(r) => {
                    // VEX.DDS.LIG.66.0F38.W1 A9 /r — R clears for xmm15
                    // (modrm.reg), B clears when rm is xmm8..15.
                    let b1 = 0xE2 & !0x80 & !(u8::from(r >= 8) << 5);
                    let b2 = 0x81 | ((!m & 0x0F) << 3);
                    self.put(&[0xC4, b1, b2, 0xA9, 0xC0 | (7 << 3) | (r & 7)]);
                }
                Loc::Spill(off) => {
                    let b1 = 0xE2 & !0x80;
                    let b2 = 0x81 | ((!m & 0x0F) << 3);
                    self.put(&[0xC4, b1, b2, 0xA9]);
                    self.mem(7, RSP, off);
                }
            }
        }
    }

    /// Lower `tape` to x86-64 machine code. `None` when an `F64`-mode
    /// tape needs FMA the CPU lacks, or when `Bit` mode refuses the
    /// tape (fused instructions / NaN constants).
    pub(super) fn emit(tape: &Tape, semantics: JitSemantics) -> Option<Emitted> {
        let has_fused = super::jit_refusal(tape).is_some();
        match semantics {
            JitSemantics::Bit if has_fused => return None,
            JitSemantics::F64 => {
                let needs_fma = tape.instrs().iter().any(|i| matches!(i, Instr::Fma { .. }));
                if needs_fma && !std::arch::is_x86_feature_detected!("fma") {
                    return None;
                }
            }
            _ => {}
        }

        let nf = tape.num_f64_regs() as u32;
        let ncs = tape.num_cs_regs() as u32;
        let slots = match semantics {
            JitSemantics::Bit => nf,
            JitSemantics::F64 => nf + ncs,
        };
        let spill_slots = slots.saturating_sub(REG_SLOTS);
        let frame = (spill_slots * 8).div_ceil(16) * 16;
        let f_loc = |r: u32| -> Loc {
            if r < REG_SLOTS {
                Loc::Reg(r as u8)
            } else {
                Loc::Spill((r - REG_SLOTS) * 8)
            }
        };
        // carry-save slots live after the f64 bank in F64 mode (the f64
        // interpreter shadows them as plain doubles)
        let cs_loc = |c: u32| f_loc(nf + c);

        let mut a = Asm {
            code: Vec::new(),
            dump: String::new(),
            bail_fixups: Vec::new(),
            guards: 0,
        };
        let guarded = semantics == JitSemantics::Bit;
        let _ = writeln!(
            a.dump,
            "; jit module: x86-64, semantics={semantics}, {} tape instr(s), \
             {slots} slot(s) ({} spilled, {frame}-byte frame)",
            tape.instrs().len(),
            spill_slots,
        );
        let _ = writeln!(
            a.dump,
            "; abi: fn(row=rdi, out=rsi, consts=rdx) -> rax (0=ok, 1=bail)"
        );

        // prologue: frame, guard windows, sign mask
        if frame > 0 {
            a.put(&[0x48, 0x81, 0xEC]); // sub rsp, imm32
            a.put(&frame.to_le_bytes());
        }
        if guarded {
            a.put(&[0x49, 0xBA]); // mov r10, SUB_WINDOW
            a.put(&SUB_WINDOW.to_le_bytes());
            a.put(&[0x49, 0xBB]); // mov r11, INF_WINDOW
            a.put(&INF_WINDOW.to_le_bytes());
        }
        a.put(&[0x48, 0xB8]); // mov rax, sign mask
        a.put(&0x8000_0000_0000_0000u64.to_le_bytes());
        a.put(&[0x66, 0x4C, 0x0F, 0x6E, 0xF0]); // movq xmm14, rax

        let promoted = |i: usize| tape.promoted.get(i).copied().unwrap_or(false);
        let mut native = 0usize;
        for (i, ins) in tape.instrs().iter().enumerate() {
            let note = match *ins {
                Instr::LoadInput { dst, input } => {
                    a.sse_mem(0xF2, 0x10, 15, RDI, input * 8);
                    if guarded {
                        a.guard15(false);
                    }
                    a.store_slot(15, f_loc(dst));
                    format!(
                        "r{dst} = row[{input}]{}",
                        if guarded { "  ; guard-load" } else { "" }
                    )
                }
                Instr::LoadConst { dst, idx } => {
                    a.sse_mem(0xF2, 0x10, 15, RDX, idx * 8);
                    a.store_slot(15, f_loc(dst));
                    format!("r{dst} = consts[{idx}]")
                }
                Instr::Add { dst, a: x, b }
                | Instr::Sub { dst, a: x, b }
                | Instr::Mul { dst, a: x, b }
                | Instr::Div { dst, a: x, b } => {
                    let (op, sym) = match ins {
                        Instr::Add { .. } => (0x58, '+'),
                        Instr::Sub { .. } => (0x5C, '-'),
                        Instr::Mul { .. } => (0x59, '*'),
                        _ => (0x5E, '/'),
                    };
                    a.load_slot(15, f_loc(x));
                    a.arith15(op, f_loc(b));
                    let guard = guarded && !promoted(i);
                    if guard {
                        a.guard15(true);
                    }
                    a.store_slot(15, f_loc(dst));
                    format!(
                        "r{dst} = r{x} {sym} r{b}{}",
                        if guard {
                            "  ; guard-result"
                        } else if guarded {
                            "  ; promoted"
                        } else {
                            ""
                        }
                    )
                }
                Instr::Neg { dst, a: x } => {
                    a.load_slot(15, f_loc(x));
                    a.flip_sign15();
                    a.store_slot(15, f_loc(dst));
                    format!("r{dst} = -r{x}")
                }
                Instr::Fma {
                    negate_b,
                    dst,
                    acc,
                    b,
                    mulc,
                    ..
                } => {
                    // F64 semantics only (Bit refuses fused tapes):
                    // cs[dst] = (±r[b]) · cs[mulc] + cs[acc]
                    a.load_slot(15, f_loc(b));
                    if negate_b {
                        a.flip_sign15();
                    }
                    let m = match cs_loc(mulc) {
                        Loc::Reg(r) => r,
                        Loc::Spill(off) => {
                            a.sse_mem(0xF2, 0x10, 13, RSP, off);
                            13
                        }
                    };
                    a.vfmadd213sd_15(m, cs_loc(acc));
                    a.store_slot(15, cs_loc(dst));
                    format!(
                        "c{dst} = fma({}r{b}, c{mulc}, c{acc})  ; vfmadd213sd",
                        if negate_b { "-" } else { "" }
                    )
                }
                Instr::IeeeToCs { dst, src, .. } => {
                    a.load_slot(15, f_loc(src));
                    a.store_slot(15, cs_loc(dst));
                    format!("c{dst} = r{src}  ; wiring")
                }
                Instr::CsToIeee { dst, src } => {
                    a.load_slot(15, cs_loc(src));
                    a.store_slot(15, f_loc(dst));
                    format!("r{dst} = c{src}  ; wiring")
                }
                Instr::Store { output, src } => {
                    match f_loc(src) {
                        Loc::Reg(r) => a.sse_mem(0xF2, 0x11, r, RSI, output * 8),
                        Loc::Spill(_) => {
                            a.load_slot(15, f_loc(src));
                            a.sse_mem(0xF2, 0x11, 15, RSI, output * 8);
                        }
                    }
                    format!("out[{output}] = r{src}")
                }
            };
            native += 1;
            let _ = writeln!(a.dump, "  {i:4}: {note}");
        }

        // ok epilogue
        a.put(&[0x31, 0xC0]); // xor eax, eax
        if frame > 0 {
            a.put(&[0x48, 0x81, 0xC4]); // add rsp, imm32
            a.put(&frame.to_le_bytes());
        }
        a.put(&[0xC3]); // ret

        // bail epilogue + fixups
        let bail = a.code.len();
        a.put(&[0xB8, 1, 0, 0, 0]); // mov eax, 1
        if frame > 0 {
            a.put(&[0x48, 0x81, 0xC4]);
            a.put(&frame.to_le_bytes());
        }
        a.put(&[0xC3]);
        for fix in std::mem::take(&mut a.bail_fixups) {
            let rel = (bail as i64 - (fix as i64 + 4)) as i32;
            a.code[fix..fix + 4].copy_from_slice(&rel.to_le_bytes());
        }
        let _ = writeln!(
            a.dump,
            "; {} guard(s), {} byte(s) of code",
            a.guards,
            a.code.len()
        );

        Some(Emitted {
            code: a.code,
            dump: a.dump,
            native_instrs: native,
            guards: a.guards,
        })
    }
}

// ---------------------------------------------------------------------
// aarch64 emitter
// ---------------------------------------------------------------------

#[cfg(all(unix, target_arch = "aarch64"))]
mod a64 {
    //! AAPCS64 emitter. ABI of the emitted function: `x0` = row
    //! pointer, `x1` = out pointer, `x2` = consts pointer; returns `x0`
    //! (0 = ok, 1 = bail). Register plan: tape slots 0..=17 live in the
    //! caller-saved pool `d0`..`d7`, `d16`..`d25`; further slots spill.
    //! `d28`/`d29` are FMA operand temps, `d30` is the working
    //! register, `x9`/`x10` hold the guard windows and `x11` is the
    //! guard scratch. `d8`..`d15` (callee-saved) are never touched.

    use super::{Emitted, JitSemantics, Loc, INF_WINDOW, SUB_WINDOW};
    use crate::compile::{Instr, Tape};
    use std::fmt::Write as _;

    /// Slots resident in FP registers; the rest spill.
    const REG_SLOTS: u32 = 18;
    /// The caller-saved register pool backing slots `0..REG_SLOTS`.
    const POOL: [u8; 18] = [
        0, 1, 2, 3, 4, 5, 6, 7, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25,
    ];

    struct Asm {
        code: Vec<u8>,
        dump: String,
        bail_fixups: Vec<usize>,
        guards: usize,
    }

    impl Asm {
        fn ins(&mut self, word: u32) {
            self.code.extend_from_slice(&word.to_le_bytes());
        }

        /// `ldr d<t>, [x<n>, #off]` (off in bytes, 8-aligned).
        fn ldr_d(&mut self, t: u8, n: u8, off: u32) {
            self.ins(0xFD40_0000 | ((off / 8) << 10) | ((n as u32) << 5) | t as u32);
        }

        /// `str d<t>, [x<n>, #off]`.
        fn str_d(&mut self, t: u8, n: u8, off: u32) {
            self.ins(0xFD00_0000 | ((off / 8) << 10) | ((n as u32) << 5) | t as u32);
        }

        /// Copy a slot into FP register `d<x>`.
        fn load_slot(&mut self, x: u8, loc: Loc) {
            match loc {
                Loc::Reg(r) if r == x => {}
                Loc::Reg(r) => self.ins(0x1E60_4000 | ((r as u32) << 5) | x as u32), // fmov
                Loc::Spill(off) => self.ldr_d(x, 31, off),
            }
        }

        /// Copy FP register `d<x>` into a slot.
        fn store_slot(&mut self, x: u8, loc: Loc) {
            match loc {
                Loc::Reg(r) if r == x => {}
                Loc::Reg(r) => self.ins(0x1E60_4000 | ((x as u32) << 5) | r as u32),
                Loc::Spill(off) => self.str_d(x, 31, off),
            }
        }

        /// Materialize a 64-bit immediate into `x<t>` (movz + movk).
        fn mov_imm64(&mut self, t: u8, v: u64) {
            let mut first = true;
            for hw in 0..4u32 {
                let part = ((v >> (hw * 16)) & 0xFFFF) as u32;
                if part == 0 && !(first && hw == 3) {
                    continue;
                }
                let op = if first { 0xD280_0000 } else { 0xF280_0000 };
                self.ins(op | (hw << 21) | (part << 5) | t as u32);
                first = false;
            }
            if first {
                self.ins(0xD280_0000 | t as u32); // movz x<t>, #0
            }
        }

        /// Record a conditional branch to be patched to the bail label.
        fn bail_branch(&mut self, cond: u32) {
            self.bail_fixups.push(self.code.len());
            self.ins(0x5400_0000 | cond);
        }

        /// Bailout guard over `d30` (see the x86 twin for the window
        /// semantics). `b.ls` for the result window, `b.lo` for loads.
        fn guard30(&mut self, result_window: bool) {
            self.ins(0x9E66_03CB); // fmov x11, d30
            self.ins(0x8B0B_016B); // add x11, x11, x11
            self.ins(0xB400_00AB); // cbz x11, +5 instructions
            self.ins(0xEB09_017F); // cmp x11, x9
            self.bail_branch(if result_window { 9 } else { 3 }); // b.ls / b.lo
            self.ins(0xEB0A_017F); // cmp x11, x10
            self.bail_branch(8); // b.hi
            self.guards += 1;
        }
    }

    /// Lower `tape` to aarch64 machine code (twin of the x86 emitter).
    pub(super) fn emit(tape: &Tape, semantics: JitSemantics) -> Option<Emitted> {
        if semantics == JitSemantics::Bit && super::jit_refusal(tape).is_some() {
            return None;
        }
        let nf = tape.num_f64_regs() as u32;
        let ncs = tape.num_cs_regs() as u32;
        let slots = match semantics {
            JitSemantics::Bit => nf,
            JitSemantics::F64 => nf + ncs,
        };
        let spill_slots = slots.saturating_sub(REG_SLOTS);
        let frame = (spill_slots * 8).div_ceil(16) * 16;
        if frame > 4080 {
            return None; // keeps every sp offset a valid scaled imm12
        }
        let f_loc = |r: u32| -> Loc {
            if r < REG_SLOTS {
                Loc::Reg(POOL[r as usize])
            } else {
                Loc::Spill((r - REG_SLOTS) * 8)
            }
        };
        let cs_loc = |c: u32| f_loc(nf + c);

        let mut a = Asm {
            code: Vec::new(),
            dump: String::new(),
            bail_fixups: Vec::new(),
            guards: 0,
        };
        let guarded = semantics == JitSemantics::Bit;
        let _ = writeln!(
            a.dump,
            "; jit module: aarch64, semantics={semantics}, {} tape instr(s), \
             {slots} slot(s) ({spill_slots} spilled, {frame}-byte frame)",
            tape.instrs().len(),
        );
        let _ = writeln!(
            a.dump,
            "; abi: fn(row=x0, out=x1, consts=x2) -> x0 (0=ok, 1=bail)"
        );

        if frame > 0 {
            a.ins(0xD100_03FF | (frame << 10)); // sub sp, sp, #frame
        }
        if guarded {
            a.mov_imm64(9, SUB_WINDOW);
            a.mov_imm64(10, INF_WINDOW);
        }

        let promoted = |i: usize| tape.promoted.get(i).copied().unwrap_or(false);
        let mut native = 0usize;
        for (i, ins) in tape.instrs().iter().enumerate() {
            let note = match *ins {
                Instr::LoadInput { dst, input } => {
                    a.ldr_d(30, 0, input * 8);
                    if guarded {
                        a.guard30(false);
                    }
                    a.store_slot(30, f_loc(dst));
                    format!(
                        "r{dst} = row[{input}]{}",
                        if guarded { "  ; guard-load" } else { "" }
                    )
                }
                Instr::LoadConst { dst, idx } => {
                    a.ldr_d(30, 2, idx * 8);
                    a.store_slot(30, f_loc(dst));
                    format!("r{dst} = consts[{idx}]")
                }
                Instr::Add { dst, a: x, b }
                | Instr::Sub { dst, a: x, b }
                | Instr::Mul { dst, a: x, b }
                | Instr::Div { dst, a: x, b } => {
                    let (op, sym): (u32, char) = match ins {
                        Instr::Add { .. } => (0x1E60_2800, '+'),
                        Instr::Sub { .. } => (0x1E60_3800, '-'),
                        Instr::Mul { .. } => (0x1E60_0800, '*'),
                        _ => (0x1E60_1800, '/'),
                    };
                    a.load_slot(30, f_loc(x));
                    let m = match f_loc(b) {
                        Loc::Reg(r) => r,
                        Loc::Spill(off) => {
                            a.ldr_d(29, 31, off);
                            29
                        }
                    };
                    // f<op> d30, d30, d<m>
                    a.ins(op | ((m as u32) << 16) | (30 << 5) | 30);
                    let guard = guarded && !promoted(i);
                    if guard {
                        a.guard30(true);
                    }
                    a.store_slot(30, f_loc(dst));
                    format!(
                        "r{dst} = r{x} {sym} r{b}{}",
                        if guard {
                            "  ; guard-result"
                        } else if guarded {
                            "  ; promoted"
                        } else {
                            ""
                        }
                    )
                }
                Instr::Neg { dst, a: x } => {
                    a.load_slot(30, f_loc(x));
                    a.ins(0x1E61_43DE); // fneg d30, d30
                    a.store_slot(30, f_loc(dst));
                    format!("r{dst} = -r{x}")
                }
                Instr::Fma {
                    negate_b,
                    dst,
                    acc,
                    b,
                    mulc,
                    ..
                } => {
                    a.load_slot(30, f_loc(b));
                    if negate_b {
                        a.ins(0x1E61_43DE); // fneg d30, d30
                    }
                    let m = match cs_loc(mulc) {
                        Loc::Reg(r) => r,
                        Loc::Spill(off) => {
                            a.ldr_d(29, 31, off);
                            29
                        }
                    };
                    let acc_r = match cs_loc(acc) {
                        Loc::Reg(r) => r,
                        Loc::Spill(off) => {
                            a.ldr_d(28, 31, off);
                            28
                        }
                    };
                    // fmadd d30, d30, d<m>, d<acc>
                    a.ins(
                        0x1F40_0000 | ((m as u32) << 16) | ((acc_r as u32) << 10) | (30 << 5) | 30,
                    );
                    a.store_slot(30, cs_loc(dst));
                    format!(
                        "c{dst} = fma({}r{b}, c{mulc}, c{acc})  ; fmadd",
                        if negate_b { "-" } else { "" }
                    )
                }
                Instr::IeeeToCs { dst, src, .. } => {
                    a.load_slot(30, f_loc(src));
                    a.store_slot(30, cs_loc(dst));
                    format!("c{dst} = r{src}  ; wiring")
                }
                Instr::CsToIeee { dst, src } => {
                    a.load_slot(30, cs_loc(src));
                    a.store_slot(30, f_loc(dst));
                    format!("r{dst} = c{src}  ; wiring")
                }
                Instr::Store { output, src } => {
                    a.load_slot(30, f_loc(src));
                    a.str_d(30, 1, output * 8);
                    format!("out[{output}] = r{src}")
                }
            };
            native += 1;
            let _ = writeln!(a.dump, "  {i:4}: {note}");
        }

        a.ins(0xD280_0000); // mov x0, #0
        if frame > 0 {
            a.ins(0x9100_03FF | (frame << 10)); // add sp, sp, #frame
        }
        a.ins(0xD65F_03C0); // ret
        let bail = a.code.len();
        a.ins(0xD280_0020); // mov x0, #1
        if frame > 0 {
            a.ins(0x9100_03FF | (frame << 10));
        }
        a.ins(0xD65F_03C0);
        for fix in std::mem::take(&mut a.bail_fixups) {
            let rel = ((bail as i64 - fix as i64) / 4) as i32;
            let imm19 = (rel as u32 & 0x7FFFF) << 5;
            let word = u32::from_le_bytes(a.code[fix..fix + 4].try_into().unwrap()) | imm19;
            a.code[fix..fix + 4].copy_from_slice(&word.to_le_bytes());
        }
        let _ = writeln!(
            a.dump,
            "; {} guard(s), {} byte(s) of code",
            a.guards,
            a.code.len()
        );

        Some(Emitted {
            code: a.code,
            dump: a.dump,
            native_instrs: native,
            guards: a.guards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_with_options, CompileOptions, TapeBackend};
    use crate::parse_program;

    fn tape_of(src: &str, optimize: bool) -> Tape {
        let g = parse_program(src).expect("test program parses");
        compile_with_options(
            &g,
            CompileOptions {
                optimize,
                ..CompileOptions::default()
            },
        )
        .expect("test program compiles")
    }

    #[test]
    fn ieee_tape_builds_a_module_and_matches_the_interpreter() {
        let tape = tape_of("in a, b, c;\nout y = (a * b + c) / (a - 3.25);\n", true);
        let Some(m) = compile_module(&tape, JitSemantics::Bit) else {
            assert!(!jit_available(), "jit available but module refused");
            return;
        };
        assert!(m.guard_count() > 0, "unpromoted tape must carry guards");
        assert!(m.dump().contains("guard-load"), "{}", m.dump());
        let mut s = tape.scratch();
        for row in [[1.0, 2.0, 3.0], [-7.5, 0.125, 1e100], [f64::MAX, 2.0, -1.0]] {
            let mut want = [0.0f64];
            tape.eval_row(TapeBackend::BitAccurate, &row, &mut want, &mut s);
            let mut got = [0.0f64];
            assert!(m.run_row(&row, &mut got), "ordinary row must not bail");
            assert_eq!(got[0].to_bits(), want[0].to_bits());
        }
    }

    #[test]
    fn guards_bail_on_nan_and_subnormal_inputs() {
        let tape = tape_of("in a, b;\nout y = a + b;\n", true);
        let Some(m) = compile_module(&tape, JitSemantics::Bit) else {
            return;
        };
        let mut out = [0.0f64];
        assert!(
            !m.run_row(&[f64::NAN, 1.0], &mut out),
            "NaN input must bail"
        );
        assert!(
            !m.run_row(&[5e-324, 1.0], &mut out),
            "subnormal input must bail"
        );
        // the result window: two tiny normals multiply into the
        // subnormal soft-float fallback region (1e-310; a product below
        // ~4.9e-324 would round clean to zero and rightly not bail)
        let tiny = tape_of("in a, b;\nout y = a * b;\n", true);
        let tm = compile_module(&tiny, JitSemantics::Bit).unwrap();
        assert!(
            !tm.run_row(&[1e-200, 1e-110], &mut out),
            "subnormal-producing row must bail"
        );
        assert!(
            tm.run_row(&[1e-200, 1e160], &mut out),
            "normal-producing row must not bail"
        );
    }

    #[test]
    fn fused_tape_refuses_bit_module_and_lints_j001() {
        use crate::fuse::{fuse_critical_paths, FusionConfig};
        use crate::FmaKind;
        // a single mul+add pair is not length-neutral to fuse; the
        // listing1 chain is, so it reliably produces Fma instructions
        let g = parse_program("x1 = a*b + c*d;\nx2 = e*f + g*x1;\nout x3 = h*i + k*x2;\n").unwrap();
        let fused = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused;
        let tape = compile_with_options(&fused, CompileOptions::default()).unwrap();
        assert!(matches!(
            jit_refusal(&tape),
            Some(JitRefusal::FusedInstrs(_))
        ));
        assert!(compile_module(&tape, JitSemantics::Bit).is_none());
        let diags = lint_jit(&tape);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::JitBailoutRate);
        assert_eq!(diags[0].rule.id(), "J001");

        // the plain IEEE twin lints clean
        let plain = compile_with_options(&g, CompileOptions::default()).unwrap();
        assert!(lint_jit(&plain).is_empty());
    }

    #[test]
    fn f64_semantics_matches_the_f64_interpreter_on_fused_tapes() {
        use crate::fuse::{fuse_critical_paths, FusionConfig};
        use crate::FmaKind;
        let g = parse_program(
            "x1 = a*b + c*d;\nx2 = e*f + g*x1;\nout x3 = h*i + k*x2;\nout z = -x3 + 2.5;\n",
        )
        .unwrap();
        let fused = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused;
        let tape = compile_with_options(&fused, CompileOptions::default()).unwrap();
        assert!(
            matches!(jit_refusal(&tape), Some(JitRefusal::FusedInstrs(_))),
            "test must exercise real Fma lowering"
        );
        let Some(m) = compile_module(&tape, JitSemantics::F64) else {
            return; // no hardware FMA (or jit off): nothing to check
        };
        assert_eq!(m.semantics(), JitSemantics::F64);
        let mut s = tape.scratch();
        let ni = tape.num_inputs();
        let rows: Vec<Vec<f64>> = vec![
            (0..ni).map(|k| k as f64 * 1.75 - 3.0).collect(),
            (0..ni)
                .map(|k| (-0.5f64).powi(k as i32 + 1) * 1e3)
                .collect(),
        ];
        for row in rows {
            let mut want = [0.0f64; 2];
            tape.eval_row(TapeBackend::F64, &row, &mut want, &mut s);
            let mut got = [0.0f64; 2];
            assert!(m.run_row(&row, &mut got), "f64 mode never bails");
            assert_eq!(got[0].to_bits(), want[0].to_bits());
            assert_eq!(got[1].to_bits(), want[1].to_bits());
        }
    }

    #[test]
    fn spilled_slots_evaluate_correctly() {
        // a chain wide enough to overflow the 13-register file
        let mut src = String::from("in a, b;\n");
        for i in 0..24 {
            src.push_str(&format!("t{i} = a * {}.5 + b;\n", i + 1));
        }
        src.push_str("out y = t0");
        for i in 1..24 {
            src.push_str(&format!(" + t{i}"));
        }
        src.push_str(";\n");
        // optimize: false keeps every intermediate live -> forced spills
        let tape = tape_of(&src, false);
        let Some(m) = compile_module(&tape, JitSemantics::Bit) else {
            return;
        };
        let mut s = tape.scratch();
        let row = [3.5, -1.25];
        let mut want = [0.0f64];
        tape.eval_row(TapeBackend::BitAccurate, &row, &mut want, &mut s);
        let mut got = [0.0f64];
        assert!(m.run_row(&row, &mut got));
        assert_eq!(got[0].to_bits(), want[0].to_bits());
    }
}
