//! The datapath IR: a DAG of floating-point operations.
//!
//! Nodes are stored in topological order (arguments always precede their
//! users), which straight-line solver code produces naturally. Two value
//! domains exist: plain IEEE 754 (`Domain::Ieee`) and the carry-save FMA
//! transport format (`Domain::Cs`); explicit conversion nodes cross
//! between them, exactly like the conversion hardware the fusion pass
//! inserts (Fig. 12b).

/// Index of a node in its [`Cdfg`].
pub type NodeId = usize;

/// Which carry-save FMA unit a fused node targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FmaKind {
    /// PCS-FMA (5 cycles at 200 MHz).
    Pcs,
    /// FCS-FMA (3 cycles at 200 MHz; needs DSP48E1 pre-adders).
    Fcs,
}

/// Value domain of a node's result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// IEEE 754 binary64.
    Ieee,
    /// Carry-save transport format of the FMA chain.
    Cs,
}

/// Operation of a node. Argument counts and domains are validated by
/// [`Cdfg::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Named external input (IEEE).
    Input(String),
    /// Compile-time constant (IEEE).
    Const(f64),
    /// IEEE addition.
    Add,
    /// IEEE subtraction (`args[0] - args[1]`).
    Sub,
    /// IEEE multiplication.
    Mul,
    /// IEEE division (never fused; stays a discrete operator).
    Div,
    /// IEEE negation (sign flip — zero latency wiring).
    Neg,
    /// Fused multiply-add `args[0] + args[1] * args\[2\]` where `args[0]`
    /// (addend) and `args\[2\]` (chained multiplicand) are in the CS domain
    /// and `args[1]` is IEEE (the non-critical `B` input, Sec. III-D).
    /// `negate_b` folds a subtraction into the unit (`A - B*C`).
    Fma {
        /// Target unit.
        kind: FmaKind,
        /// Negate the IEEE `B` input (free sign flip).
        negate_b: bool,
    },
    /// IEEE → CS conversion (wiring + optional complement; 1 cycle).
    IeeeToCs(FmaKind),
    /// CS → IEEE conversion (carry resolve + normalize + round; 3 cycles).
    CsToIeee(FmaKind),
    /// Named external output (IEEE).
    Output(String),
}

impl Op {
    /// Expected argument count.
    pub fn arity(&self) -> usize {
        match self {
            Op::Input(_) | Op::Const(_) => 0,
            Op::Neg | Op::IeeeToCs(_) | Op::CsToIeee(_) | Op::Output(_) => 1,
            Op::Add | Op::Sub | Op::Mul | Op::Div => 2,
            Op::Fma { .. } => 3,
        }
    }

    /// Result domain.
    pub fn domain(&self) -> Domain {
        match self {
            Op::Fma { .. } | Op::IeeeToCs(_) => Domain::Cs,
            _ => Domain::Ieee,
        }
    }
}

/// One node: an operation applied to earlier nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Argument node ids (all `<` this node's id).
    pub args: Vec<NodeId>,
}

/// A straight-line floating-point datapath.
#[derive(Clone, Debug, Default)]
pub struct Cdfg {
    nodes: Vec<Node>,
}

impl Cdfg {
    /// Empty graph.
    pub fn new() -> Self {
        Cdfg { nodes: Vec::new() }
    }

    /// Append a node; returns its id.
    ///
    /// # Panics
    /// If arity is wrong or an argument id is not an earlier node.
    pub fn push(&mut self, op: Op, args: Vec<NodeId>) -> NodeId {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op:?}");
        let id = self.nodes.len();
        for &a in &args {
            assert!(a < id, "argument {a} must precede node {id}");
        }
        self.nodes.push(Node { op, args });
        id
    }

    /// Append a node **without** the arity/ordering checks of [`push`].
    ///
    /// Exists so tests (and fuzzers) can build deliberately broken graphs
    /// and assert that [`validate_diagnostics`] reports the right rule;
    /// production passes must use [`push`].
    ///
    /// [`push`]: Cdfg::push
    /// [`validate_diagnostics`]: Cdfg::validate_diagnostics
    pub fn push_unchecked(&mut self, op: Op, args: Vec<NodeId>) -> NodeId {
        self.nodes.push(Node { op, args });
        self.nodes.len() - 1
    }

    /// Convenience: named input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        self.push(Op::Input(name.into()), vec![])
    }

    /// Convenience: constant.
    pub fn constant(&mut self, v: f64) -> NodeId {
        self.push(Op::Const(v), vec![])
    }

    /// Convenience: `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Add, vec![a, b])
    }

    /// Convenience: `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Sub, vec![a, b])
    }

    /// Convenience: `a * b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Mul, vec![a, b])
    }

    /// Convenience: `a / b`.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Div, vec![a, b])
    }

    /// Convenience: named output.
    pub fn output(&mut self, name: impl Into<String>, v: NodeId) -> NodeId {
        self.push(Op::Output(name.into()), vec![v])
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all `Output` nodes.
    pub fn outputs(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| matches!(self.nodes[i].op, Op::Output(_)))
            .collect()
    }

    /// Count nodes matching a predicate.
    pub fn count_ops(&self, pred: impl Fn(&Op) -> bool) -> usize {
        self.nodes.iter().filter(|n| pred(&n.op)).count()
    }

    /// Users of each node (reverse edges).
    pub fn users(&self) -> Vec<Vec<NodeId>> {
        let mut users = vec![Vec::new(); self.nodes.len()];
        for (id, n) in self.nodes.iter().enumerate() {
            for &a in &n.args {
                users[a].push(id);
            }
        }
        users
    }

    /// Check structural and domain invariants, reporting every violation
    /// as a structured [`Diagnostic`](csfma_verify::Diagnostic):
    /// `D001` (arity), `D002` (edge order / cycle), `D003` (domain
    /// mismatch). `Ok(())` means the graph is well-formed.
    pub fn validate_diagnostics(&self) -> Result<(), Vec<csfma_verify::Diagnostic>> {
        use csfma_verify::{Diagnostic, Rule, Span};
        let mut diags = Vec::new();
        for (id, n) in self.nodes.iter().enumerate() {
            if n.args.len() != n.op.arity() {
                diags.push(Diagnostic::error(
                    Rule::ArityMismatch,
                    Span::Node(id),
                    format!(
                        "{:?} takes {} argument(s) but has {}",
                        n.op,
                        n.op.arity(),
                        n.args.len()
                    ),
                ));
            }
            let mut ordered = true;
            for (slot, &a) in n.args.iter().enumerate() {
                if a >= id {
                    ordered = false;
                    diags.push(Diagnostic::error(
                        Rule::EdgeOrder,
                        Span::Edge {
                            user: id,
                            arg: slot,
                        },
                        format!("argument refers to node {a}, which does not precede node {id}"),
                    ));
                }
            }
            if !ordered || n.args.len() != n.op.arity() {
                continue; // domain checks need well-formed edges
            }
            let expected: &[Domain] = match &n.op {
                Op::Input(_) | Op::Const(_) => &[],
                Op::Neg | Op::Output(_) | Op::IeeeToCs(_) => &[Domain::Ieee],
                Op::CsToIeee(_) => &[Domain::Cs],
                Op::Add | Op::Sub | Op::Mul | Op::Div => &[Domain::Ieee, Domain::Ieee],
                Op::Fma { .. } => &[Domain::Cs, Domain::Ieee, Domain::Cs],
            };
            for (slot, (&a, &want)) in n.args.iter().zip(expected).enumerate() {
                let got = self.nodes[a].op.domain();
                if got != want {
                    diags.push(Diagnostic::error(
                        Rule::DomainMismatch,
                        Span::Edge {
                            user: id,
                            arg: slot,
                        },
                        format!(
                            "{:?} port {slot} expects {want:?} but node {a} \
                             ({:?}) produces {got:?}",
                            n.op, self.nodes[a].op
                        ),
                    ));
                }
            }
        }
        if diags.is_empty() {
            Ok(())
        } else {
            Err(diags)
        }
    }

    /// Check structural and domain invariants.
    ///
    /// Thin wrapper over [`validate_diagnostics`](Cdfg::validate_diagnostics).
    ///
    /// # Panics
    /// With a rendered report if any invariant is violated.
    #[track_caller]
    pub fn validate(&self) {
        if let Err(diags) = self.validate_diagnostics() {
            panic!("invalid Cdfg:\n{}", csfma_verify::render_report(&diags));
        }
    }

    /// Remove nodes that no output transitively depends on; returns the
    /// compacted graph and the old→new id mapping.
    pub fn eliminate_dead(&self) -> (Cdfg, Vec<Option<NodeId>>) {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs();
        while let Some(id) = stack.pop() {
            if live[id] {
                continue;
            }
            live[id] = true;
            stack.extend(self.nodes[id].args.iter().copied());
        }
        let mut map = vec![None; self.nodes.len()];
        let mut out = Cdfg::new();
        for (id, n) in self.nodes.iter().enumerate() {
            if live[id] {
                let args = n.args.iter().map(|&a| map[a].unwrap()).collect();
                map[id] = Some(out.push(n.op.clone(), args));
            }
        }
        (out, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_listing1() {
        // Listing 1: x1 = a*b + c*d; x2 = e*f + g*x1; x3 = h*i + k*x2
        let mut g = Cdfg::new();
        let names: Vec<NodeId> = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "k"]
            .iter()
            .map(|n| g.input(*n))
            .collect();
        let x1 = {
            let m1 = g.mul(names[0], names[1]);
            let m2 = g.mul(names[2], names[3]);
            g.add(m1, m2)
        };
        let x2 = {
            let m1 = g.mul(names[4], names[5]);
            let m2 = g.mul(names[6], x1);
            g.add(m1, m2)
        };
        let x3 = {
            let m1 = g.mul(names[7], names[8]);
            let m2 = g.mul(names[9], x2);
            g.add(m1, m2)
        };
        g.output("x3", x3);
        g.validate();
        assert_eq!(g.count_ops(|o| matches!(o, Op::Mul)), 6);
        assert_eq!(g.count_ops(|o| matches!(o, Op::Add)), 3);
    }

    #[test]
    #[should_panic]
    fn domain_violation_caught() {
        let mut g = Cdfg::new();
        let a = g.input("a");
        let cs = g.push(Op::IeeeToCs(FmaKind::Pcs), vec![a]);
        g.push(Op::Add, vec![cs, a]); // CS into IEEE add
        g.validate();
    }

    #[test]
    fn dead_elimination() {
        let mut g = Cdfg::new();
        let a = g.input("a");
        let b = g.input("b");
        let dead = g.mul(a, b);
        let live = g.add(a, b);
        let _ = dead;
        g.output("y", live);
        let (g2, map) = g.eliminate_dead();
        g2.validate();
        assert_eq!(g2.count_ops(|o| matches!(o, Op::Mul)), 0);
        assert!(map[dead].is_none());
        assert!(map[live].is_some());
    }

    #[test]
    fn validate_diagnostics_reports_all_violations() {
        use csfma_verify::Rule;
        let mut g = Cdfg::new();
        let a = g.input("a");
        let cs = g.push(Op::IeeeToCs(FmaKind::Pcs), vec![a]);
        g.push_unchecked(Op::Add, vec![cs, a]); // D003 on port 0
        g.push_unchecked(Op::Mul, vec![a]); // D001
        g.push_unchecked(Op::Neg, vec![9]); // D002
        let diags = g.validate_diagnostics().unwrap_err();
        let rules: Vec<Rule> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::DomainMismatch), "{diags:?}");
        assert!(rules.contains(&Rule::ArityMismatch), "{diags:?}");
        assert!(rules.contains(&Rule::EdgeOrder), "{diags:?}");
    }

    #[test]
    fn valid_graph_has_no_diagnostics() {
        let mut g = Cdfg::new();
        let a = g.input("a");
        let m = g.mul(a, a);
        g.output("y", m);
        assert!(g.validate_diagnostics().is_ok());
    }

    #[test]
    fn users_reverse_edges() {
        let mut g = Cdfg::new();
        let a = g.input("a");
        let m = g.mul(a, a);
        g.output("y", m);
        let users = g.users();
        assert_eq!(users[a], vec![m, m]);
    }
}
