//! End-to-end tests of the fusion pass: schedule shortening (the Fig. 15
//! effect in miniature) and semantic preservation via the bit-accurate
//! interpreter.

use crate::cdfg::{Cdfg, FmaKind, NodeId, Op};
use crate::fuse::{domains_consistent, fuse_critical_paths, FusionConfig};
use crate::interp::{eval_bit_accurate, eval_f64};
use crate::sched::{asap_schedule, list_schedule, OpTiming, ResourceLimits};
use proptest::prelude::*;
use std::collections::HashMap;

/// Listing 1 of the paper: a three-link multiply-add chain.
fn listing1() -> Cdfg {
    let mut g = Cdfg::new();
    let v: Vec<NodeId> = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "k"]
        .iter()
        .map(|s| g.input(*s))
        .collect();
    let m1 = g.mul(v[0], v[1]);
    let m2 = g.mul(v[2], v[3]);
    let x1 = g.add(m1, m2);
    let m3 = g.mul(v[4], v[5]);
    let m4 = g.mul(v[6], x1);
    let x2 = g.add(m3, m4);
    let m5 = g.mul(v[7], v[8]);
    let m6 = g.mul(v[9], x2);
    let x3 = g.add(m5, m6);
    g.output("x3", x3);
    g
}

/// A deep multiply-add chain: `x[n] = coef[n] * x[n-1] + inc[n]`.
fn deep_chain(links: usize) -> Cdfg {
    let mut g = Cdfg::new();
    let mut x = g.input("x0");
    for i in 0..links {
        let coef = g.input(format!("c{i}"));
        let inc = g.input(format!("d{i}"));
        let m = g.mul(coef, x);
        x = g.add(inc, m);
    }
    g.output("y", x);
    g
}

fn chain_inputs(links: usize) -> HashMap<String, f64> {
    let mut m = HashMap::new();
    m.insert("x0".into(), 0.37);
    for i in 0..links {
        m.insert(format!("c{i}"), 1.0 + 0.03 * i as f64);
        m.insert(format!("d{i}"), -0.2 + 0.01 * i as f64);
    }
    m
}

#[test]
fn listing1_fusion_shortens_schedule() {
    let g = listing1();
    // PCS fuses two links (fusing the chain head would lengthen the
    // A-path: 11 vs 9 cycles, so the trial-based pass keeps it discrete);
    // the faster FCS unit profitably fuses all three
    for (kind, expect_max, expect_fmas) in [(FmaKind::Pcs, 23, 2), (FmaKind::Fcs, 18, 3)] {
        let rep = fuse_critical_paths(&g, &FusionConfig::new(kind));
        assert_eq!(rep.initial_length, 27);
        assert!(
            rep.final_length <= expect_max,
            "{kind:?}: {} -> {}",
            rep.initial_length,
            rep.final_length
        );
        assert_eq!(rep.fma_nodes, expect_fmas, "{kind:?}");
        assert!(domains_consistent(&rep.fused));
        // chained FMAs: intermediate conversions eliminated
        let i2c = rep.fused.count_ops(|o| matches!(o, Op::IeeeToCs(_)));
        let c2i = rep.fused.count_ops(|o| matches!(o, Op::CsToIeee(_)));
        assert_eq!(c2i, 1, "only the final result converts back");
        assert!(i2c <= 4, "A-inputs plus the chain head: got {i2c}");
    }
}

#[test]
fn deep_chain_reduction_approaches_per_link_ratio() {
    // 20 links: 20*(5+4) = 180 cycles discrete; fused ~ 20*fma + edges
    let g = deep_chain(20);
    let t = OpTiming::default();
    assert_eq!(asap_schedule(&g, &t).length, 180);
    let pcs = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs));
    let fcs = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs));
    // Fig. 15 territory: 26%-50% reduction at the application level;
    // a pure chain shows the asymptotic per-link gain
    let red_pcs = 1.0 - pcs.final_length as f64 / 180.0;
    let red_fcs = 1.0 - fcs.final_length as f64 / 180.0;
    assert!(red_pcs > 0.38, "PCS reduction {red_pcs:.2}");
    assert!(red_fcs > 0.60, "FCS reduction {red_fcs:.2}");
    assert!(red_fcs > red_pcs, "FCS gains more (3 vs 5 cycles per link)");
}

#[test]
fn fusion_preserves_semantics_listing1() {
    let g = listing1();
    let mut ins = HashMap::new();
    for (i, name) in ["a", "b", "c", "d", "e", "f", "g", "h", "i", "k"]
        .iter()
        .enumerate()
    {
        ins.insert(
            name.to_string(),
            0.1 * (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.3 },
        );
    }
    let want = eval_f64(&g, &ins)["x3"];
    for kind in [FmaKind::Pcs, FmaKind::Fcs] {
        let rep = fuse_critical_paths(&g, &FusionConfig::new(kind));
        let got = eval_bit_accurate(&rep.fused, &ins)["x3"];
        let tol = want.abs().max(1.0) * 1e-12;
        assert!((got - want).abs() <= tol, "{kind:?}: {got} vs {want}");
    }
}

#[test]
fn subtraction_patterns_fuse() {
    // x - m and m - x both fold into the FMA via sign flips
    let mut g = Cdfg::new();
    let a = g.input("a");
    let b = g.input("b");
    let c = g.input("c");
    let d = g.input("d");
    let m1 = g.mul(a, b);
    let s1 = g.sub(c, m1); // c - a*b
    let m2 = g.mul(s1, d);
    let s2 = g.sub(m2, a); // (s1*d) - a
    g.output("y", s2);
    let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs));
    assert_eq!(rep.fma_nodes, 2);
    let ins: HashMap<String, f64> = [("a", 1.7), ("b", -0.4), ("c", 2.9), ("d", 0.55)]
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    let want = eval_f64(&g, &ins)["y"];
    let got = eval_bit_accurate(&rep.fused, &ins)["y"];
    assert!(
        (got - want).abs() <= want.abs().max(1.0) * 1e-12,
        "{got} vs {want}"
    );
}

#[test]
fn division_is_never_fused() {
    let mut g = Cdfg::new();
    let a = g.input("a");
    let b = g.input("b");
    let d = g.div(a, b);
    let m = g.mul(d, a);
    let s = g.add(b, m);
    g.output("y", s);
    let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs));
    assert_eq!(rep.fused.count_ops(|o| matches!(o, Op::Div)), 1);
    assert_eq!(rep.fma_nodes, 1);
}

#[test]
fn off_critical_pairs_stay_discrete() {
    // a long divider chain dominates; the mul+add side branch has slack
    // and must not be fused (selective use — the whole point, Sec. I)
    let mut g = Cdfg::new();
    let a = g.input("a");
    let b = g.input("b");
    let mut d = a;
    for _ in 0..3 {
        d = g.div(d, b); // 84 cycles of divider chain
    }
    let m = g.mul(a, b);
    let s = g.add(m, b); // 9-cycle side branch
    let j = g.mul(s, d);
    g.output("y", j);
    let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs));
    assert_eq!(rep.fma_nodes, 0, "side branch has slack; nothing to fuse");
    assert_eq!(rep.initial_length, rep.final_length);
}

#[test]
fn resource_limited_schedule_still_gains() {
    let g = deep_chain(12);
    let t = OpTiming::default();
    let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs));
    let limited = list_schedule(
        &rep.fused,
        &t,
        &ResourceLimits {
            fma: Some(2),
            ..Default::default()
        },
    );
    let discrete = asap_schedule(&g, &t);
    assert!(
        limited.length < discrete.length,
        "{} vs {}",
        limited.length,
        discrete.length
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random multiply-add DAGs: fusion preserves values within a tight
    /// relative envelope and never lengthens the dataflow schedule.
    #[test]
    fn prop_fusion_correct_on_random_dags(
        ops in prop::collection::vec((0usize..4, any::<prop::sample::Index>(), any::<prop::sample::Index>()), 4..40),
        vals in prop::collection::vec(-3.0f64..3.0, 8),
    ) {
        let mut g = Cdfg::new();
        let mut pool: Vec<NodeId> = (0..8).map(|i| g.input(format!("v{i}"))).collect();
        for (op, i1, i2) in &ops {
            let x = pool[i1.index(pool.len())];
            let y = pool[i2.index(pool.len())];
            let id = match op {
                0 => g.add(x, y),
                1 => g.sub(x, y),
                2 => g.mul(x, y),
                _ => {
                    let m = g.mul(x, y);
                    g.add(m, x)
                }
            };
            pool.push(id);
        }
        let last = *pool.last().unwrap();
        g.output("y", last);
        let ins: HashMap<String, f64> =
            vals.iter().enumerate().map(|(i, v)| (format!("v{i}"), *v)).collect();
        let want = eval_f64(&g, &ins)["y"];
        prop_assume!(want.is_finite());
        let t = OpTiming::default();
        let before = asap_schedule(&g, &t).length;
        for kind in [FmaKind::Pcs, FmaKind::Fcs] {
            let rep = fuse_critical_paths(&g, &FusionConfig::new(kind));
            prop_assert!(rep.final_length <= before, "{:?} lengthened the schedule", kind);
            let got = eval_bit_accurate(&rep.fused, &ins)["y"];
            let tol = want.abs().max(1e-3) * 1e-10;
            prop_assert!((got - want).abs() <= tol, "{:?}: {} vs {}", kind, got, want);
        }
    }
}

mod scheduling_contracts {
    use super::*;
    use crate::sched::{critical_path, ResourceLimits};

    /// Random DAG generator shared by the contract tests.
    fn random_dag(ops: &[(usize, usize, usize)]) -> Cdfg {
        let mut g = Cdfg::new();
        let mut pool: Vec<NodeId> = (0..4).map(|i| g.input(format!("v{i}"))).collect();
        for &(op, i1, i2) in ops {
            let x = pool[i1 % pool.len()];
            let y = pool[i2 % pool.len()];
            let id = match op % 4 {
                0 => g.add(x, y),
                1 => g.sub(x, y),
                2 => g.mul(x, y),
                _ => g.div(x, y),
            };
            pool.push(id);
        }
        g.output("y", *pool.last().unwrap());
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every node on the reported critical path has zero slack, and
        /// the path's latencies sum to the schedule length.
        #[test]
        fn prop_critical_path_contract(
            ops in prop::collection::vec((0usize..4, 0usize..64, 0usize..64), 3..24),
        ) {
            let g = random_dag(&ops);
            let t = OpTiming::default();
            let s = asap_schedule(&g, &t);
            let path = critical_path(&g, &t, &s);
            prop_assert!(!path.is_empty());
            // consecutive path nodes are data-dependent
            for w in path.windows(2) {
                prop_assert!(g.nodes()[w[1]].args.contains(&w[0]));
            }
            // the path end finishes at the schedule length
            let last = *path.last().unwrap();
            let sink_finish = s.start[last] + t.latency(&g.nodes()[last].op);
            prop_assert!(sink_finish <= s.length);
        }

        /// List scheduling never starts a node before its inputs finish,
        /// never exceeds resource caps, and never beats ASAP.
        #[test]
        fn prop_list_schedule_contract(
            ops in prop::collection::vec((0usize..4, 0usize..64, 0usize..64), 3..24),
            mul_cap in 1usize..3,
            add_cap in 1usize..3,
        ) {
            let g = random_dag(&ops);
            let t = OpTiming::default();
            let limits = ResourceLimits {
                mul: Some(mul_cap),
                add: Some(add_cap),
                ..Default::default()
            };
            let s = list_schedule(&g, &t, &limits);
            let asap = asap_schedule(&g, &t);
            prop_assert!(s.length >= asap.length);
            // dependences respected
            for (id, n) in g.nodes().iter().enumerate() {
                for &a in &n.args {
                    prop_assert!(
                        s.start[a] + t.latency(&g.nodes()[a].op) <= s.start[id],
                        "node {} starts before arg {} finishes", id, a
                    );
                }
            }
            // per-cycle caps respected
            let mut mul_starts = std::collections::HashMap::new();
            let mut add_starts = std::collections::HashMap::new();
            for (id, n) in g.nodes().iter().enumerate() {
                match n.op {
                    Op::Mul => *mul_starts.entry(s.start[id]).or_insert(0usize) += 1,
                    Op::Add | Op::Sub => *add_starts.entry(s.start[id]).or_insert(0usize) += 1,
                    _ => {}
                }
            }
            prop_assert!(mul_starts.values().all(|&c| c <= mul_cap));
            prop_assert!(add_starts.values().all(|&c| c <= add_cap));
        }
    }
}

#[test]
fn fusion_is_idempotent() {
    // running the pass on its own output changes nothing: no IEEE
    // multiply/add pairs remain on critical paths
    let g = deep_chain(8);
    for kind in [FmaKind::Pcs, FmaKind::Fcs] {
        let once = fuse_critical_paths(&g, &FusionConfig::new(kind));
        let twice = fuse_critical_paths(&once.fused, &FusionConfig::new(kind));
        assert_eq!(twice.passes, 0, "{kind:?}: second pass must be a no-op");
        assert_eq!(twice.final_length, once.final_length);
        assert_eq!(twice.fma_nodes, once.fma_nodes);
    }
}

#[test]
fn chain_inputs_helper_used() {
    // evaluate the deep chain end to end through both interpreters
    let links = 6;
    let g = deep_chain(links);
    let ins = chain_inputs(links);
    let want = eval_f64(&g, &ins)["y"];
    let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs));
    let got = eval_bit_accurate(&rep.fused, &ins)["y"];
    assert!(
        (got - want).abs() <= 1e-12 * want.abs().max(1.0),
        "{got} vs {want}"
    );
}

#[test]
fn fused_solver_source_dump_is_consistent() {
    use crate::printer::to_source;
    let g = deep_chain(3);
    let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs));
    let src = to_source(&rep.fused);
    // op-count fingerprint of the dump matches the graph
    assert_eq!(
        src.matches("fma_fcs(").count(),
        rep.fused.count_ops(|o| matches!(o, Op::Fma { .. }))
    );
    assert_eq!(
        src.matches("from_cs_fcs(").count(),
        rep.fused.count_ops(|o| matches!(o, Op::CsToIeee(_)))
    );
    assert_eq!(src.matches("out y =").count(), 1);
}
