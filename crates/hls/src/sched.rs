//! Operator timing and scheduling.
//!
//! Latencies are cycles at the 200 MHz system clock the paper targets for
//! all operators (Sec. IV-A/IV-D). All operators are fully pipelined
//! (initiation interval 1), so a *time-multiplexed* unit can start a new
//! operation every cycle — resource constraints bound the number of
//! simultaneous starts per operator class, the way Nymble shares units.

use crate::cdfg::{Cdfg, FmaKind, NodeId, Op};

/// Operator latencies in cycles at 200 MHz.
#[derive(Clone, Copy, Debug)]
pub struct OpTiming {
    /// CoreGen-style discrete multiplier ("low latency", 5 cycles).
    pub mul: u32,
    /// CoreGen-style discrete adder/subtractor (4 cycles).
    pub add: u32,
    /// Discrete divider (CoreGen low-latency double divider).
    pub div: u32,
    /// PCS-FMA (Table I).
    pub fma_pcs: u32,
    /// FCS-FMA (Table I).
    pub fma_fcs: u32,
    /// IEEE → CS conversion: widening wiring plus a registered complement.
    pub ieee_to_cs: u32,
    /// CS → IEEE conversion: carry resolve, normalize, round.
    pub cs_to_ieee: u32,
}

impl Default for OpTiming {
    fn default() -> Self {
        OpTiming {
            mul: 5,
            add: 4,
            div: 28,
            fma_pcs: 5,
            fma_fcs: 3,
            ieee_to_cs: 1,
            cs_to_ieee: 3,
        }
    }
}

impl OpTiming {
    /// Latency of one operation.
    pub fn latency(&self, op: &Op) -> u32 {
        match op {
            Op::Input(_) | Op::Const(_) | Op::Output(_) | Op::Neg => 0,
            Op::Add | Op::Sub => self.add,
            Op::Mul => self.mul,
            Op::Div => self.div,
            Op::Fma {
                kind: FmaKind::Pcs, ..
            } => self.fma_pcs,
            Op::Fma {
                kind: FmaKind::Fcs, ..
            } => self.fma_fcs,
            Op::IeeeToCs(_) => self.ieee_to_cs,
            Op::CsToIeee(_) => self.cs_to_ieee,
        }
    }
}

/// A computed schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Start cycle of each node.
    pub start: Vec<u32>,
    /// Total schedule length in cycles (`max(start + latency)`).
    pub length: u32,
}

/// Unconstrained as-soon-as-possible schedule: the dataflow-limited
/// latency, i.e. the critical-path length in cycles.
pub fn asap_schedule(g: &Cdfg, t: &OpTiming) -> Schedule {
    let mut start = vec![0u32; g.len()];
    let mut length = 0;
    for (id, n) in g.nodes().iter().enumerate() {
        let s = n
            .args
            .iter()
            .map(|&a| start[a] + t.latency(&g.nodes()[a].op))
            .max()
            .unwrap_or(0);
        start[id] = s;
        length = length.max(s + t.latency(&n.op));
    }
    Schedule { start, length }
}

/// Extract one critical path (node ids, source → sink) from an ASAP
/// schedule: walk back from a latest-finishing node through the argument
/// that determined each start time.
pub fn critical_path(g: &Cdfg, t: &OpTiming, s: &Schedule) -> Vec<NodeId> {
    let mut cur = (0..g.len())
        .max_by_key(|&i| s.start[i] + t.latency(&g.nodes()[i].op))
        .unwrap_or(0);
    let mut path = vec![cur];
    loop {
        let n = &g.nodes()[cur];
        let Some(&pred) = n
            .args
            .iter()
            .find(|&&a| s.start[a] + t.latency(&g.nodes()[a].op) == s.start[cur])
        else {
            break;
        };
        path.push(pred);
        cur = pred;
        if s.start[cur] == 0 && g.nodes()[cur].args.is_empty() {
            break;
        }
    }
    path.reverse();
    path
}

/// Resource class of an operation for list scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Discrete multipliers.
    Mul,
    /// Discrete adders/subtractors.
    Add,
    /// Dividers.
    Div,
    /// Carry-save FMA units (both kinds share the pool).
    Fma,
    /// Conversions (cheap, usually unbounded).
    Convert,
    /// Free (inputs, constants, outputs, negation).
    Free,
}

/// Classify an operation.
pub fn resource_kind(op: &Op) -> ResourceKind {
    match op {
        Op::Mul => ResourceKind::Mul,
        Op::Add | Op::Sub => ResourceKind::Add,
        Op::Div => ResourceKind::Div,
        Op::Fma { .. } => ResourceKind::Fma,
        Op::IeeeToCs(_) | Op::CsToIeee(_) => ResourceKind::Convert,
        _ => ResourceKind::Free,
    }
}

/// Resource limits for list scheduling (`None` = unbounded). All units
/// are pipelined with initiation interval 1, so a limit of `k` allows `k`
/// operation *starts* per cycle in that class.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResourceLimits {
    /// Max simultaneous multiplier starts.
    pub mul: Option<usize>,
    /// Max simultaneous adder starts.
    pub add: Option<usize>,
    /// Max simultaneous divider starts.
    pub div: Option<usize>,
    /// Max simultaneous FMA starts (the paper used up to 39 units).
    pub fma: Option<usize>,
}

impl ResourceLimits {
    fn limit(&self, k: ResourceKind) -> Option<usize> {
        match k {
            ResourceKind::Mul => self.mul,
            ResourceKind::Add => self.add,
            ResourceKind::Div => self.div,
            ResourceKind::Fma => self.fma,
            ResourceKind::Convert | ResourceKind::Free => None,
        }
    }
}

/// Latency-weighted list scheduling under resource limits. Priority is
/// the node's remaining critical-path length (computed via ALAP on the
/// unconstrained schedule).
pub fn list_schedule(g: &Cdfg, t: &OpTiming, limits: &ResourceLimits) -> Schedule {
    let n = g.len();
    // priority: longest path from node to any sink
    let users = g.users();
    let mut height = vec![0u32; n];
    for id in (0..n).rev() {
        let lat = t.latency(&g.nodes()[id].op);
        let mut h = lat;
        for &uid in &users[id] {
            h = h.max(lat + height[uid]);
        }
        height[id] = h;
    }

    let mut start = vec![u32::MAX; n];
    let mut unscheduled: Vec<NodeId> = (0..n).collect();
    let mut cycle = 0u32;
    let mut length = 0u32;
    while !unscheduled.is_empty() {
        let mut used: std::collections::HashMap<ResourceKind, usize> = Default::default();
        // fixpoint within the cycle: zero-latency ops (inputs, negation)
        // chain combinationally and may enable users in the same cycle
        loop {
            let mut ready: Vec<NodeId> = unscheduled
                .iter()
                .copied()
                .filter(|&id| {
                    start[id] == u32::MAX
                        && g.nodes()[id].args.iter().all(|&a| {
                            start[a] != u32::MAX && start[a] + t.latency(&g.nodes()[a].op) <= cycle
                        })
                })
                .collect();
            if ready.is_empty() {
                break;
            }
            ready.sort_by_key(|&id| std::cmp::Reverse(height[id]));
            let mut progressed = false;
            for id in ready {
                let kind = resource_kind(&g.nodes()[id].op);
                let in_use = used.entry(kind).or_insert(0);
                if let Some(cap) = limits.limit(kind) {
                    if *in_use >= cap {
                        continue;
                    }
                }
                *in_use += 1;
                start[id] = cycle;
                length = length.max(cycle + t.latency(&g.nodes()[id].op));
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        unscheduled.retain(|&id| start[id] == u32::MAX);
        cycle += 1;
        assert!(cycle < 1_000_000, "list scheduling did not converge");
    }
    Schedule { start, length }
}

/// Render a per-cycle occupancy chart of a schedule: how many operations
/// of each class are *executing* (issued and not yet finished) in every
/// cycle. Text-mode Gantt for reports and debugging.
pub fn occupancy_chart(g: &Cdfg, t: &OpTiming, s: &Schedule, max_rows: usize) -> String {
    use std::fmt::Write as _;
    let classes = [
        (ResourceKind::Mul, 'M'),
        (ResourceKind::Add, 'A'),
        (ResourceKind::Fma, 'F'),
        (ResourceKind::Convert, 'c'),
        (ResourceKind::Div, 'D'),
    ];
    let mut busy = vec![[0usize; 5]; s.length as usize + 1];
    for (id, n) in g.nodes().iter().enumerate() {
        let kind = resource_kind(&n.op);
        let Some(k) = classes.iter().position(|(c, _)| *c == kind) else {
            continue;
        };
        let lat = t.latency(&n.op).max(1);
        for cyc in s.start[id]..s.start[id] + lat {
            if (cyc as usize) < busy.len() {
                busy[cyc as usize][k] += 1;
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "cycle  M  A  F  c  D  |occupancy");
    let step = (busy.len() / max_rows.max(1)).max(1);
    for (cyc, row) in busy.iter().enumerate().step_by(step) {
        let total: usize = row.iter().sum();
        let bar: String = classes
            .iter()
            .enumerate()
            .flat_map(|(k, (_, ch))| std::iter::repeat_n(*ch, row[k].min(30)))
            .collect();
        let _ = writeln!(
            out,
            "{cyc:>5} {:>2} {:>2} {:>2} {:>2} {:>2}  |{bar}",
            row[0], row[1], row[2], row[3], row[4]
        );
        let _ = total;
    }
    out
}

/// As-late-as-possible start times for the unconstrained schedule length:
/// the slack `alap[i] - asap[i]` is zero exactly on critical paths — the
/// criterion the fusion pass uses to pick fusion candidates.
pub fn alap_schedule(g: &Cdfg, t: &OpTiming) -> Schedule {
    let asap = asap_schedule(g, t);
    let users = g.users();
    let mut start = vec![0u32; g.len()];
    for id in (0..g.len()).rev() {
        let lat = t.latency(&g.nodes()[id].op);
        let mut latest = asap.length - lat;
        for &u in &users[id] {
            latest = latest.min(start[u].saturating_sub(lat));
        }
        start[id] = latest;
    }
    Schedule {
        start,
        length: asap.length,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing1() -> Cdfg {
        let mut g = Cdfg::new();
        let v: Vec<NodeId> = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "k"]
            .iter()
            .map(|s| g.input(*s))
            .collect();
        let m1 = g.mul(v[0], v[1]);
        let m2 = g.mul(v[2], v[3]);
        let x1 = g.add(m1, m2);
        let m3 = g.mul(v[4], v[5]);
        let m4 = g.mul(v[6], x1);
        let x2 = g.add(m3, m4);
        let m5 = g.mul(v[7], v[8]);
        let m6 = g.mul(v[9], x2);
        let x3 = g.add(m5, m6);
        g.output("x3", x3);
        g
    }

    #[test]
    fn asap_length_of_listing1() {
        // critical path: mul+add, then (mul+add) x2 more links = 3*(5+4)
        let g = listing1();
        let t = OpTiming::default();
        let s = asap_schedule(&g, &t);
        assert_eq!(s.length, 27);
    }

    #[test]
    fn critical_path_follows_the_chain() {
        let g = listing1();
        let t = OpTiming::default();
        let s = asap_schedule(&g, &t);
        let path = critical_path(&g, &t, &s);
        // path visits alternating mul/add nodes of the dependent chain
        let muls = path
            .iter()
            .filter(|&&id| matches!(g.nodes()[id].op, Op::Mul))
            .count();
        let adds = path
            .iter()
            .filter(|&&id| matches!(g.nodes()[id].op, Op::Add))
            .count();
        assert_eq!(muls, 3);
        assert_eq!(adds, 3);
    }

    #[test]
    fn list_schedule_unbounded_matches_asap() {
        let g = listing1();
        let t = OpTiming::default();
        let asap = asap_schedule(&g, &t);
        let ls = list_schedule(&g, &t, &ResourceLimits::default());
        assert_eq!(ls.length, asap.length);
    }

    #[test]
    fn alap_slack_properties() {
        let g = listing1();
        let t = OpTiming::default();
        let asap = asap_schedule(&g, &t);
        let alap = alap_schedule(&g, &t);
        assert_eq!(asap.length, alap.length);
        let path = critical_path(&g, &t, &asap);
        for id in 0..g.len() {
            assert!(alap.start[id] >= asap.start[id], "negative slack at {id}");
        }
        // every node on the reported critical path has zero slack
        for &id in &path {
            assert_eq!(
                alap.start[id], asap.start[id],
                "slack on critical node {id}"
            );
        }
    }

    #[test]
    fn occupancy_chart_renders() {
        let g = listing1();
        let t = OpTiming::default();
        let s = asap_schedule(&g, &t);
        let chart = occupancy_chart(&g, &t, &s, 30);
        assert!(chart.contains("cycle"));
        // six multiplies run in the first cycles
        assert!(chart.lines().nth(1).unwrap().contains("MMMM"));
        assert!(chart.lines().count() >= 10);
    }

    #[test]
    fn resource_pressure_stretches_schedule() {
        let g = listing1();
        let t = OpTiming::default();
        let tight = list_schedule(
            &g,
            &t,
            &ResourceLimits {
                mul: Some(1),
                add: Some(1),
                ..Default::default()
            },
        );
        let loose = list_schedule(&g, &t, &ResourceLimits::default());
        // with II=1 multipliers, one multiplier serializes the 2 parallel
        // muls of the first link by a single cycle each
        assert!(tight.length >= loose.length);
        assert!(tight.length <= loose.length + 4);
    }
}
