//! Graceful-degradation batch execution: self-checking evaluation with a
//! per-row fallback ladder.
//!
//! [`Tape::eval_batch`] is the fast path — it trusts the datapath. This
//! module is the *robust* path for runs where the datapath may be faulty
//! (fault-injection campaigns, or hardware under test): every FMA runs
//! with the mod-3 residue / recompute-and-compare checks of
//! `csfma_core::fault` enabled, every chunk runs under `catch_unwind`
//! with bounded retry, and a row whose checks fire is re-evaluated down a
//! ladder of increasingly conservative engines:
//!
//! 1. **chunk** — the normal chunked executor, checks on. A panicking
//!    chunk is retried up to [`RobustOptions::chunk_retries`] times
//!    (transient faults have been claimed, so the retry runs clean).
//! 2. **row** — the flagged row alone, re-evaluated on the same backend
//!    (`Recovered { backend: "row-bit" | "row-f64" | "row-oracle" }`).
//!    Transient faults cannot strike twice; only sticky faults re-arm.
//! 3. **oracle** — [`TapeBackend::Oracle`]: the pure soft-float operator
//!    stack plus the allocating behavioral units, structurally
//!    independent of the scratch-based executors
//!    (`Recovered { backend: "oracle" }`).
//! 4. **quarantine** — the row's outputs are poisoned with NaN and a
//!    structured `F001` [`Diagnostic`] names the offending source-graph
//!    node (via [`Tape::source_node_of`]). One bad row never corrupts or
//!    aborts its neighbors.
//!
//! Recovered outputs are bit-identical to a fault-free evaluation: rung 2
//! replays the exact row semantics and rung 3 is bit-identical to the
//! bit-accurate backend by construction. Chunking follows
//! `par_chunks_indexed`, so the filled buffer — and the whole
//! [`BatchReport`] — is byte-identical for any worker count.
//!
//! Coverage boundary: the residue and duplicate-compute checks guard the
//! *arithmetic datapath* (multiplier words, PCS carry lanes, block-mux
//! selects, the exponent path). A [`FaultSite::TapeReg`](csfma_core::fault::FaultSite::TapeReg) upset corrupts a
//! stored register plane *between* operations; that class needs ECC on
//! the register file, which this model deliberately does not implement —
//! campaigns report it as the undetected remainder (DESIGN.md §10).

use crate::cdfg::FmaKind;
use crate::compile::{Tape, TapeBackend};
use csfma_core::batch::{par_chunks_indexed, CHUNK_ROWS};
use csfma_core::fault::{
    CheckKind, FaultDetected, FaultHook, FaultPlan, FaultStage, FmaCtl, RowFaults,
};
use csfma_core::CsOperand;
use csfma_softfloat::{FpFormat, SoftFloat};
use csfma_verify::{Diagnostic, Rule, Span};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::compile::{Instr, TapeScratch};

const F: FpFormat = FpFormat::BINARY64;

/// Knobs for [`Tape::eval_batch_robust`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RobustOptions<'a> {
    /// Worker threads (same semantics as [`Tape::eval_batch`]; `0`/`1`
    /// runs inline). The result is byte-identical for any value.
    pub threads: usize,
    /// How many times a panicking chunk is re-run before every row in it
    /// falls back to the per-row ladder.
    pub chunk_retries: u32,
    /// Fault plan to inject while evaluating (`None` = run clean with
    /// checks enabled).
    pub fault: Option<&'a FaultPlan>,
}

impl<'a> RobustOptions<'a> {
    /// Defaults (1 thread, 2 chunk retries) with a fault plan attached.
    pub fn with_fault(plan: &'a FaultPlan) -> Self {
        RobustOptions {
            threads: 1,
            chunk_retries: 2,
            fault: Some(plan),
        }
    }
}

/// What happened to one batch row.
#[derive(Clone, Debug, PartialEq)]
pub enum RowOutcome {
    /// Computed by the primary chunked executor, no check fired.
    Ok,
    /// A check (or chunk panic) fired; the row was re-computed cleanly
    /// by the named fallback engine. The value is bit-identical to a
    /// fault-free evaluation.
    Recovered {
        /// Ladder rung that produced the value: `"row-bit"`,
        /// `"row-f64"`, `"row-oracle"` or `"oracle"`.
        backend: &'static str,
    },
    /// Every rung failed; the row's outputs are NaN and the diagnostic
    /// names the offending source-graph node.
    Quarantined {
        /// The structured `F001` finding.
        diag: Diagnostic,
    },
}

/// Per-row outcomes and aggregate counters of one
/// [`Tape::eval_batch_robust`] run.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Rows evaluated.
    pub rows: usize,
    /// One outcome per row, in row order.
    pub outcomes: Vec<RowOutcome>,
    /// Self-check detections observed across all rungs (a sticky fault
    /// detected on two rungs counts twice).
    pub detections: usize,
    /// Chunk evaluations that panicked.
    pub chunk_panics: usize,
    /// Chunk-level retries performed after a panic.
    pub chunk_retries: usize,
}

impl BatchReport {
    /// `(ok, recovered, quarantined)` row counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0usize, 0usize, 0usize);
        for o in &self.outcomes {
            match o {
                RowOutcome::Ok => c.0 += 1,
                RowOutcome::Recovered { .. } => c.1 += 1,
                RowOutcome::Quarantined { .. } => c.2 += 1,
            }
        }
        c
    }

    /// True when anything at all went wrong (detection, panic, non-`Ok`
    /// outcome).
    pub fn has_faults(&self) -> bool {
        self.detections != 0
            || self.chunk_panics != 0
            || self.outcomes.iter().any(|o| !matches!(o, RowOutcome::Ok))
    }

    /// The quarantined rows' diagnostics, with their row indices.
    pub fn quarantined(&self) -> Vec<(usize, &Diagnostic)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match o {
                RowOutcome::Quarantined { diag } => Some((i, diag)),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ok, recovered, quarantined) = self.counts();
        write!(
            f,
            "rows={} ok={ok} recovered={recovered} quarantined={quarantined} \
             detections={} chunk_panics={} chunk_retries={}",
            self.rows, self.detections, self.chunk_panics, self.chunk_retries
        )
    }
}

/// What one chunk contributed to the report (only non-`Ok` rows are
/// recorded; `outcomes` carries absolute row indices).
#[derive(Default)]
struct ChunkRecord {
    outcomes: Vec<(usize, RowOutcome)>,
    detections: usize,
    panics: usize,
    retries: usize,
}

impl ChunkRecord {
    fn nontrivial(&self) -> bool {
        !self.outcomes.is_empty() || self.detections != 0 || self.panics != 0 || self.retries != 0
    }
}

impl Tape {
    /// Evaluate a batch with self-checks, fault injection and the
    /// per-row fallback ladder (module docs). Same layout contract as
    /// [`Tape::eval_batch`]; additionally returns a [`BatchReport`] with
    /// one [`RowOutcome`] per row. Both the buffer and the report are
    /// byte-identical for any `opts.threads`.
    ///
    /// # Panics
    /// As [`Tape::eval_batch`]: no inputs, or `rows.len()` not a
    /// multiple of `num_inputs()`.
    pub fn eval_batch_robust(
        &self,
        backend: TapeBackend,
        rows: &[f64],
        opts: &RobustOptions,
    ) -> (Vec<f64>, BatchReport) {
        let ni = self.num_inputs();
        assert!(ni > 0, "eval_batch_robust on a tape with no inputs");
        assert_eq!(rows.len() % ni, 0, "rows not a multiple of num_inputs");
        let n = rows.len() / ni;
        let no = self.num_outputs();
        let mut out = vec![0.0f64; n * no];
        let mut report = BatchReport {
            rows: n,
            outcomes: vec![RowOutcome::Ok; n],
            ..Default::default()
        };
        if no == 0 || n == 0 {
            return (out, report);
        }
        let records: Mutex<Vec<ChunkRecord>> = Mutex::new(Vec::new());
        // The stealing scheduler hands chunks to whichever worker claims
        // them; records are pushed in completion order and then merged
        // below by absolute row index, so the report — like the output
        // buffer — is independent of steal timing.
        par_chunks_indexed(
            &mut out,
            CHUNK_ROWS * no,
            opts.threads,
            || self.scratch(),
            |scratch, chunk_idx, chunk| {
                let base = chunk_idx * CHUNK_ROWS;
                let len = chunk.len() / no;
                let rec = self.robust_chunk(backend, rows, base, len, chunk, scratch, opts);
                if rec.nontrivial() {
                    records.lock().unwrap_or_else(|e| e.into_inner()).push(rec);
                }
            },
        );
        for rec in records.into_inner().unwrap_or_else(|e| e.into_inner()) {
            report.detections += rec.detections;
            report.chunk_panics += rec.panics;
            report.chunk_retries += rec.retries;
            for (row, outcome) in rec.outcomes {
                report.outcomes[row] = outcome;
            }
        }
        (out, report)
    }

    /// [`Tape::eval_batch_robust`] wrapped in an `eval_robust` stage
    /// span, with the [`BatchReport`]'s fault tallies (detections, chunk
    /// panics/retries, recovered and quarantined row counts) recorded as
    /// `fault_*` counters into `prof`. Buffer and report are
    /// byte-identical to the unprofiled call.
    pub fn eval_batch_robust_profiled(
        &self,
        backend: TapeBackend,
        rows: &[f64],
        opts: &RobustOptions,
        prof: &mut csfma_obs::Profiler,
    ) -> (Vec<f64>, BatchReport) {
        let tok = prof.enter("eval_robust");
        let ((out, report), wall_us) =
            csfma_obs::time_us(|| self.eval_batch_robust(backend, rows, opts));
        prof.exit(tok);
        let (ok, recovered, quarantined) = report.counts();
        prof.set_counter("rows", report.rows as f64);
        prof.set_counter("threads", opts.threads as f64);
        if wall_us > 0.0 {
            prof.set_counter("rows_per_sec", report.rows as f64 / (wall_us * 1e-6));
        }
        prof.set_counter("rows_ok", ok as f64);
        prof.set_counter("fault_detections", report.detections as f64);
        prof.set_counter("fault_chunk_panics", report.chunk_panics as f64);
        prof.set_counter("fault_chunk_retries", report.chunk_retries as f64);
        prof.set_counter("fault_rows_recovered", recovered as f64);
        prof.set_counter("fault_rows_quarantined", quarantined as f64);
        (out, report)
    }

    /// One chunk of the robust executor: guarded evaluation with bounded
    /// retry, then the ladder for every flagged lane.
    #[allow(clippy::too_many_arguments)]
    fn robust_chunk(
        &self,
        backend: TapeBackend,
        rows: &[f64],
        base: usize,
        len: usize,
        chunk_out: &mut [f64],
        s: &mut TapeScratch,
        opts: &RobustOptions,
    ) -> ChunkRecord {
        let ni = self.num_inputs();
        let no = self.num_outputs();
        let mut rec = ChunkRecord::default();
        let mut lane_findings: Vec<Vec<(usize, FaultDetected)>> = vec![Vec::new(); len];

        // rung 1: the whole chunk, checks on, catch_unwind + retry. A
        // transient fault claimed during a panicked attempt stays
        // claimed, so the retry runs clean.
        let mut attempts = 0u32;
        let chunk_ok = loop {
            for fl in &mut lane_findings {
                fl.clear();
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                for k in 0..len {
                    let row_idx = base + k;
                    let hook = opts
                        .fault
                        .and_then(|p| p.for_row(row_idx as u64, FaultStage::Primary));
                    self.guarded_row(
                        backend,
                        row_idx,
                        &rows[row_idx * ni..(row_idx + 1) * ni],
                        &mut chunk_out[k * no..(k + 1) * no],
                        s,
                        hook.as_ref(),
                        &mut lane_findings[k],
                    );
                }
            }));
            match result {
                Ok(()) => break true,
                Err(_) => {
                    rec.panics += 1;
                    if attempts >= opts.chunk_retries {
                        break false;
                    }
                    attempts += 1;
                    rec.retries += 1;
                }
            }
        };

        // rung 1.5: the scalar-vs-plane differential oracle (§10.5). Run
        // the production bit-plane kernel as a *shadow* of the scalar
        // evaluation above and flag any lane whose bits disagree. The
        // committed output always comes from the scalar engine, so a
        // plane-path fault — injected via the `PlaneStrike` tamper
        // points, or a genuine kernel defect — is contained by
        // construction; the differential turns that into a detection.
        if chunk_ok
            && backend == TapeBackend::BitAccurate
            && len == CHUNK_ROWS
            && self.plane_eligible_count() > 0
        {
            #[cfg(feature = "fault-inject")]
            if let Some(plan) = opts.fault {
                let mut strikes: Vec<csfma_core::PlaneStrike> = Vec::new();
                for k in 0..len {
                    if let Some(rf) = plan.for_row((base + k) as u64, FaultStage::Primary) {
                        if let Some((site, sel)) = rf.plane_strike() {
                            strikes.push(csfma_core::PlaneStrike { site, lane: k, sel });
                        }
                    }
                }
                if !strikes.is_empty() {
                    csfma_core::arm_plane_strikes(&strikes);
                }
            }
            let mut shadow = vec![0.0f64; len * no];
            let mut cs = self.chunk_scratch();
            let ran = catch_unwind(AssertUnwindSafe(|| {
                self.eval_chunk(backend, rows, base, len, &mut shadow, &mut cs);
            }));
            #[cfg(feature = "fault-inject")]
            csfma_core::disarm_plane_strikes();
            match ran {
                Ok(()) => {
                    let instr_idx = self.plane_eligible.iter().position(|&p| p).unwrap_or(0);
                    for k in 0..len {
                        let differs = (0..no).any(|o| {
                            shadow[k * no + o].to_bits() != chunk_out[k * no + o].to_bits()
                        });
                        if differs {
                            lane_findings[k].push((
                                instr_idx,
                                FaultDetected {
                                    check: CheckKind::PlaneDifferential,
                                    message: format!(
                                        "plane kernel disagrees with the scalar engine \
                                         at row {}",
                                        base + k
                                    ),
                                },
                            ));
                        }
                    }
                }
                // a panicking shadow never touches the committed output;
                // record it like any other absorbed chunk panic
                Err(_) => rec.panics += 1,
            }
        }

        // rungs 2..4 for every lane the chunk could not vouch for
        for k in 0..len {
            if chunk_ok && lane_findings[k].is_empty() {
                continue;
            }
            let row_idx = base + k;
            let findings = std::mem::take(&mut lane_findings[k]);
            rec.detections += findings.len();
            let outcome = self.ladder_row(
                backend,
                row_idx,
                &rows[row_idx * ni..(row_idx + 1) * ni],
                &mut chunk_out[k * no..(k + 1) * no],
                s,
                opts,
                findings,
                &mut rec,
            );
            rec.outcomes.push((row_idx, outcome));
        }
        // tally on the worker that ran the chunk, so the process-wide
        // counters travel through the stealing path with the work
        let (recovered, quarantined) =
            rec.outcomes
                .iter()
                .fold((0u64, 0u64), |(r, q), (_, o)| match o {
                    RowOutcome::Recovered { .. } => (r + 1, q),
                    RowOutcome::Quarantined { .. } => (r, q + 1),
                    RowOutcome::Ok => (r, q),
                });
        crate::profile::count_robust_chunk(rec.detections as u64, recovered, quarantined);
        rec
    }

    /// Rungs 2 (isolated row on the primary backend), 3 (oracle) and 4
    /// (quarantine) for one flagged row.
    #[allow(clippy::too_many_arguments)]
    fn ladder_row(
        &self,
        backend: TapeBackend,
        row_idx: usize,
        row: &[f64],
        out: &mut [f64],
        s: &mut TapeScratch,
        opts: &RobustOptions,
        mut findings: Vec<(usize, FaultDetected)>,
        rec: &mut ChunkRecord,
    ) -> RowOutcome {
        // rung 2: the row alone, same backend. Only sticky faults re-arm
        // at this stage, so a transiently-hit row recovers here.
        let label = match backend {
            TapeBackend::F64 => "row-f64",
            TapeBackend::BitAccurate => "row-bit",
            TapeBackend::Oracle => "row-oracle",
            TapeBackend::Jit => "row-jit",
        };
        let mut retry_findings: Vec<(usize, FaultDetected)> = Vec::new();
        let retried = catch_unwind(AssertUnwindSafe(|| {
            let hook = opts
                .fault
                .and_then(|p| p.for_row(row_idx as u64, FaultStage::Fallback));
            self.guarded_row(
                backend,
                row_idx,
                row,
                out,
                s,
                hook.as_ref(),
                &mut retry_findings,
            );
        }));
        rec.detections += retry_findings.len();
        match retried {
            Ok(()) if retry_findings.is_empty() => return RowOutcome::Recovered { backend: label },
            Ok(()) => findings.append(&mut retry_findings),
            Err(_) => {}
        }

        // rung 3: the oracle stack. Only a sticky ExecPanic fault still
        // arms here — a sticky datapath fault cannot reach it.
        let oracle = catch_unwind(AssertUnwindSafe(|| {
            if let Some(h) = opts
                .fault
                .and_then(|p| p.for_row(row_idx as u64, FaultStage::Oracle))
            {
                if h.wants_panic() {
                    panic!("injected executor panic at row {row_idx} (oracle)");
                }
            }
            self.eval_row(TapeBackend::Oracle, row, out, s);
        }));
        if oracle.is_ok() {
            return RowOutcome::Recovered { backend: "oracle" };
        }

        // rung 4: quarantine — poison the outputs, name the node
        out.fill(f64::NAN);
        let diag = match findings.last() {
            Some((instr_idx, det)) => {
                let span = self
                    .source_node_of(*instr_idx)
                    .map(Span::Node)
                    .unwrap_or(Span::Global);
                Diagnostic::error(
                    Rule::FaultDetected,
                    span,
                    format!(
                        "row {row_idx}: {} ({} check, instruction {instr_idx})",
                        det.message,
                        det.check.name()
                    ),
                )
            }
            None => Diagnostic::error(
                Rule::FaultDetected,
                Span::Global,
                format!("row {row_idx}: executor panicked and the oracle retry also panicked"),
            ),
        };
        RowOutcome::Quarantined { diag }
    }

    /// One row with checks enabled and the fault hook plugged into every
    /// tamper point this layer owns (executor panic, register-plane
    /// upsets); the datapath sites live inside the units themselves.
    /// With `hook = None` this computes exactly what [`Tape::eval_row`]
    /// computes on the same backend, bit for bit.
    #[allow(clippy::too_many_arguments)]
    fn guarded_row(
        &self,
        backend: TapeBackend,
        row_idx: usize,
        row: &[f64],
        out: &mut [f64],
        s: &mut TapeScratch,
        hook: Option<&RowFaults>,
        findings: &mut Vec<(usize, FaultDetected)>,
    ) {
        if let Some(h) = hook {
            if h.wants_panic() {
                panic!("injected executor panic at row {row_idx}");
            }
        }
        let tape_fault = hook.and_then(|h| h.tape_fault(self.instrs.len()));
        match backend {
            TapeBackend::F64 => self.guarded_row_f64(row, out, s, tape_fault),
            // a JIT row that reaches this rung re-runs on the guarded
            // interpreter: same bits by the bailout contract, and the
            // tamper points stay armed for the differential
            TapeBackend::BitAccurate | TapeBackend::Oracle | TapeBackend::Jit => {
                self.guarded_row_bit(row, out, s, hook, tape_fault, findings)
            }
        }
    }

    /// Host-double semantics with register-plane fault injection (no
    /// residue checks exist on this backend — there is no carry-save
    /// datapath to check).
    fn guarded_row_f64(
        &self,
        row: &[f64],
        out: &mut [f64],
        s: &mut TapeScratch,
        tape_fault: Option<(usize, u32)>,
    ) {
        let f = &mut s.f;
        let cs_f = &mut s.cs_f;
        for (i, ins) in self.instrs.iter().enumerate() {
            match *ins {
                Instr::LoadInput { dst, input } => f[dst as usize] = row[input as usize],
                Instr::LoadConst { dst, idx } => f[dst as usize] = self.consts[idx as usize],
                Instr::Add { dst, a, b } => f[dst as usize] = f[a as usize] + f[b as usize],
                Instr::Sub { dst, a, b } => f[dst as usize] = f[a as usize] - f[b as usize],
                Instr::Mul { dst, a, b } => f[dst as usize] = f[a as usize] * f[b as usize],
                Instr::Div { dst, a, b } => f[dst as usize] = f[a as usize] / f[b as usize],
                Instr::Neg { dst, a } => f[dst as usize] = -f[a as usize],
                Instr::Fma {
                    negate_b,
                    dst,
                    acc,
                    b,
                    mulc,
                    ..
                } => {
                    let bv = if negate_b {
                        -f[b as usize]
                    } else {
                        f[b as usize]
                    };
                    cs_f[dst as usize] = bv.mul_add(cs_f[mulc as usize], cs_f[acc as usize]);
                }
                Instr::IeeeToCs { dst, src, .. } => cs_f[dst as usize] = f[src as usize],
                Instr::CsToIeee { dst, src } => f[dst as usize] = cs_f[src as usize],
                Instr::Store { output, src } => out[output as usize] = f[src as usize],
            }
            if let Some((fi, bit)) = tape_fault {
                if fi == i {
                    flip_f64_dst(ins, bit, f, cs_f);
                }
            }
        }
    }

    /// Bit-accurate semantics with every FMA running the checked entry
    /// point, plus register-plane fault injection.
    fn guarded_row_bit(
        &self,
        row: &[f64],
        out: &mut [f64],
        s: &mut TapeScratch,
        hook: Option<&RowFaults>,
        tape_fault: Option<(usize, u32)>,
        findings: &mut Vec<(usize, FaultDetected)>,
    ) {
        use csfma_softfloat::batch as sfb;
        use csfma_softfloat::Round;
        let f = &mut s.f;
        let cs = &mut s.cs;
        for (i, ins) in self.instrs.iter().enumerate() {
            match *ins {
                Instr::LoadInput { dst, input } => {
                    f[dst as usize] = sfb::canonicalize(row[input as usize])
                }
                Instr::LoadConst { dst, idx } => {
                    f[dst as usize] = self.consts_canonical[idx as usize]
                }
                Instr::Add { dst, a, b } => {
                    f[dst as usize] = sfb::hosted_add(f[a as usize], f[b as usize])
                }
                Instr::Sub { dst, a, b } => {
                    f[dst as usize] = sfb::hosted_sub(f[a as usize], f[b as usize])
                }
                Instr::Mul { dst, a, b } => {
                    f[dst as usize] = sfb::hosted_mul(f[a as usize], f[b as usize])
                }
                Instr::Div { dst, a, b } => {
                    f[dst as usize] = sfb::hosted_div(f[a as usize], f[b as usize])
                }
                Instr::Neg { dst, a } => f[dst as usize] = sfb::hosted_neg(f[a as usize]),
                Instr::Fma {
                    kind,
                    negate_b,
                    dst,
                    acc,
                    b,
                    mulc,
                } => {
                    let unit = match kind {
                        FmaKind::Pcs => &s.pcs,
                        FmaKind::Fcs => &s.fcs,
                    };
                    let mut bv = SoftFloat::from_f64(F, f[b as usize]);
                    if negate_b {
                        bv = bv.neg();
                    }
                    let mut dets: Vec<FaultDetected> = Vec::new();
                    let mut ctl = match hook {
                        Some(h) => FmaCtl::with_hook(h, &mut dets),
                        None => FmaCtl::checked(&mut dets),
                    };
                    let (r, _) = unit.fma_checked_with(
                        &cs[acc as usize],
                        &bv,
                        &cs[mulc as usize],
                        &mut s.fma,
                        &mut ctl,
                    );
                    findings.extend(dets.into_iter().map(|d| (i, d)));
                    cs[dst as usize] = r;
                }
                Instr::IeeeToCs { kind, dst, src } => {
                    let fmt = match kind {
                        FmaKind::Pcs => self.pcs_format,
                        FmaKind::Fcs => self.fcs_format,
                    };
                    cs[dst as usize] = CsOperand::from_f64(f[src as usize], fmt);
                }
                Instr::CsToIeee { dst, src } => {
                    f[dst as usize] = cs[src as usize].to_ieee(F, Round::NearestEven).to_f64();
                }
                Instr::Store { output, src } => out[output as usize] = f[src as usize],
            }
            if let Some((fi, bit)) = tape_fault {
                if fi == i {
                    flip_bit_dst(ins, bit, f, cs);
                }
            }
        }
    }
}

/// Flip a register-plane bit behind instruction `ins` on the f64
/// backend (both banks are doubles there).
fn flip_f64_dst(ins: &Instr, bit: u32, f: &mut [f64], cs_f: &mut [f64]) {
    match *ins {
        Instr::LoadInput { dst, .. }
        | Instr::LoadConst { dst, .. }
        | Instr::Add { dst, .. }
        | Instr::Sub { dst, .. }
        | Instr::Mul { dst, .. }
        | Instr::Div { dst, .. }
        | Instr::Neg { dst, .. }
        | Instr::CsToIeee { dst, .. } => flip_f64(&mut f[dst as usize], bit),
        Instr::Fma { dst, .. } | Instr::IeeeToCs { dst, .. } => {
            flip_f64(&mut cs_f[dst as usize], bit)
        }
        // a Store writes memory the caller owns, not a register plane —
        // the strike lands on already-committed data and is masked
        Instr::Store { .. } => {}
    }
}

/// Flip a register-plane bit behind instruction `ins` on the
/// bit-accurate backend (CS bank holds real carry-save operands).
fn flip_bit_dst(ins: &Instr, bit: u32, f: &mut [f64], cs: &mut [CsOperand]) {
    match *ins {
        Instr::LoadInput { dst, .. }
        | Instr::LoadConst { dst, .. }
        | Instr::Add { dst, .. }
        | Instr::Sub { dst, .. }
        | Instr::Mul { dst, .. }
        | Instr::Div { dst, .. }
        | Instr::Neg { dst, .. }
        | Instr::CsToIeee { dst, .. } => flip_f64(&mut f[dst as usize], bit),
        Instr::Fma { dst, .. } | Instr::IeeeToCs { dst, .. } => {
            #[cfg(feature = "fault-inject")]
            cs[dst as usize].fault_flip_mant_bit(bit as usize);
            #[cfg(not(feature = "fault-inject"))]
            let _ = (cs, dst);
        }
        Instr::Store { .. } => {}
    }
}

fn flip_f64(v: &mut f64, bit: u32) {
    *v = f64::from_bits(v.to_bits() ^ (1u64 << (bit % 64)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::fuse::{fuse_critical_paths, FusionConfig};
    use crate::parse_program;
    use csfma_core::fault::{FaultSite, FaultSpec};

    fn fused_listing1() -> Tape {
        let src = "x1 = a*b + c*d;\nx2 = e*f + g*x1;\nout x3 = h*i + k*x2;\n";
        let g = parse_program(src).unwrap();
        let fused = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused;
        compile(&fused).unwrap()
    }

    fn stimulus(tape: &Tape, n: usize) -> Vec<f64> {
        (0..n * tape.num_inputs())
            .map(|i| ((i * 2654435761) % 1000) as f64 * 0.31 - 155.0)
            .collect()
    }

    #[test]
    fn clean_robust_run_matches_eval_batch_bitwise() {
        let tape = fused_listing1();
        let n = 2 * CHUNK_ROWS + 11;
        let rows = stimulus(&tape, n);
        for backend in [TapeBackend::F64, TapeBackend::BitAccurate] {
            let want = tape.eval_batch(backend, &rows, 1);
            let (got, report) = tape.eval_batch_robust(
                backend,
                &rows,
                &RobustOptions {
                    threads: 2,
                    chunk_retries: 2,
                    fault: None,
                },
            );
            assert!(
                want.iter()
                    .zip(got.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{backend:?} robust run diverged from eval_batch"
            );
            assert!(!report.has_faults(), "{report}");
            assert_eq!(report.counts(), (n, 0, 0));
        }
    }

    #[test]
    fn transient_mantissa_fault_recovers_bit_identically() {
        let tape = fused_listing1();
        let n = CHUNK_ROWS + 5;
        let rows = stimulus(&tape, n);
        let clean = tape.eval_batch(TapeBackend::BitAccurate, &rows, 1);
        for site in FaultSite::MANTISSA {
            let plan = FaultPlan::single(0xC0FFEE, site, 7);
            let (got, report) = tape.eval_batch_robust(
                TapeBackend::BitAccurate,
                &rows,
                &RobustOptions::with_fault(&plan),
            );
            assert!(
                clean
                    .iter()
                    .zip(got.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{site:?}: recovered output not bit-identical"
            );
            assert!(report.detections >= 1, "{site:?}: no detection");
            assert_eq!(
                report.outcomes[7],
                RowOutcome::Recovered { backend: "row-bit" },
                "{site:?}"
            );
            // neighbors untouched
            assert_eq!(report.outcomes[6], RowOutcome::Ok, "{site:?}");
            assert_eq!(report.outcomes[8], RowOutcome::Ok, "{site:?}");
        }
    }

    #[test]
    fn sticky_datapath_fault_falls_back_to_oracle() {
        let tape = fused_listing1();
        let n = CHUNK_ROWS;
        let rows = stimulus(&tape, n);
        let clean = tape.eval_batch(TapeBackend::BitAccurate, &rows, 1);
        let plan = FaultPlan::new(7).with_fault(FaultSpec::stuck(FaultSite::MulSum, 3));
        let (got, report) = tape.eval_batch_robust(
            TapeBackend::BitAccurate,
            &rows,
            &RobustOptions::with_fault(&plan),
        );
        assert_eq!(
            report.outcomes[3],
            RowOutcome::Recovered { backend: "oracle" }
        );
        assert!(
            clean
                .iter()
                .zip(got.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "oracle recovery must be bit-identical"
        );
        // detected on the primary rung and again on the row rung
        assert!(report.detections >= 2, "{report}");
    }

    #[test]
    fn sticky_panic_quarantines_one_row_and_names_a_node() {
        let tape = fused_listing1();
        let n = CHUNK_ROWS + 3;
        let rows = stimulus(&tape, n);
        let clean = tape.eval_batch(TapeBackend::BitAccurate, &rows, 1);
        let plan = FaultPlan::new(11).with_fault(FaultSpec::stuck(FaultSite::ExecPanic, 5));
        let (got, report) = tape.eval_batch_robust(
            TapeBackend::BitAccurate,
            &rows,
            &RobustOptions::with_fault(&plan),
        );
        assert!(matches!(report.outcomes[5], RowOutcome::Quarantined { .. }));
        assert!(got[5].is_nan(), "quarantined row must be poisoned");
        assert!(report.chunk_panics >= 1);
        // every other row in the batch still carries the clean value
        for r in 0..n {
            if r == 5 {
                continue;
            }
            assert_eq!(
                got[r].to_bits(),
                clean[r].to_bits(),
                "row {r} corrupted by a neighbor's quarantine"
            );
        }
        if let RowOutcome::Quarantined { diag } = &report.outcomes[5] {
            assert_eq!(diag.rule, Rule::FaultDetected);
        }
    }

    #[test]
    fn transient_panic_recovers_via_chunk_retry() {
        let tape = fused_listing1();
        let n = CHUNK_ROWS;
        let rows = stimulus(&tape, n);
        let clean = tape.eval_batch(TapeBackend::BitAccurate, &rows, 1);
        let plan = FaultPlan::single(99, FaultSite::ExecPanic, 9);
        let (got, report) = tape.eval_batch_robust(
            TapeBackend::BitAccurate,
            &rows,
            &RobustOptions::with_fault(&plan),
        );
        assert!(report.chunk_panics >= 1, "{report}");
        assert!(report.chunk_retries >= 1, "{report}");
        assert!(
            clean
                .iter()
                .zip(got.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "retried chunk must be bit-identical"
        );
    }

    #[test]
    fn report_is_thread_invariant() {
        let tape = fused_listing1();
        let n = 3 * CHUNK_ROWS + 17;
        let rows = stimulus(&tape, n);
        let plan = FaultPlan::new(0xDEAD)
            .with_fault(FaultSpec::transient(FaultSite::MulCarry, 2))
            .with_fault(FaultSpec::stuck(FaultSite::PcsCarry, 70))
            .with_fault(FaultSpec::stuck(FaultSite::ExecPanic, 140));
        let run = |threads: usize| {
            plan.reset();
            tape.eval_batch_robust(
                TapeBackend::BitAccurate,
                &rows,
                &RobustOptions {
                    threads,
                    chunk_retries: 2,
                    fault: Some(&plan),
                },
            )
        };
        let (out1, rep1) = run(1);
        for threads in [4, 8] {
            let (out, rep) = run(threads);
            assert!(
                out1.iter()
                    .zip(out.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "outputs diverged at {threads} threads"
            );
            assert_eq!(
                rep1.outcomes, rep.outcomes,
                "outcomes diverged at {threads}"
            );
            assert_eq!(rep1.detections, rep.detections);
        }
    }
}
