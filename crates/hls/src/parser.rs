//! A small straight-line expression language — the front door of the
//! compiler flow, standing in for Nymble's C input.
//!
//! Grammar (semicolon-terminated statements):
//!
//! ```text
//! program :=  stmt*
//! stmt    :=  "in" decl ("," decl)* ";"
//!          |  ["out"] ident "=" expr ";"
//! decl    :=  ident ["[" snum "," snum "]"]
//! expr    :=  term  (("+" | "-") term)*
//! term    :=  factor (("*" | "/") factor)*
//! factor  :=  "-" factor | ident | number | "(" expr ")"
//! snum    :=  ["-"] number
//! ```
//!
//! Identifiers read before being assigned become datapath inputs;
//! statements prefixed with `out` become outputs. Listing 1 of the paper
//! is literally:
//!
//! ```text
//! x1 = a*b + c*d;
//! x2 = e*f + g*x1;
//! out x3 = h*i + k*x2;
//! ```
//!
//! A program may declare its inputs explicitly with `in a, b;`
//! statements. The presence of **any** `in` declaration makes the whole
//! program *strict*: implicit input creation is disabled, and reading an
//! identifier that is neither a declared input nor a previously assigned
//! variable is a positioned parse error ("undefined input name") instead
//! of silently growing the input row. Declared-but-unused inputs still
//! appear in the graph (and the compiled tape's row layout), in
//! declaration order.
//!
//! An `in` declaration may bound an input with `in a [lo, hi];` — a
//! closed interval the caller promises every supplied value lies in.
//! Bounds do not change the compiled graph; [`parse_program_with_ranges`]
//! surfaces them as [`RangeDecl`]s for the `R*` value-range analysis
//! (`csfma-lint --ranges`) and for range-proved fast-path promotion.
//! [`parse_program`] accepts and discards them, so bounded sources stay
//! runnable everywhere. Bound *semantics* (`lo <= hi`, finiteness) are
//! checked by rule `R003`, not the parser.

use crate::cdfg::{Cdfg, NodeId};
use csfma_verify::RangeDecl;
use std::collections::HashMap;
use std::fmt;

/// Parse error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Byte offset into the source.
    pub pos: usize,
    /// 1-based source line (0 until located against the source).
    pub line: u32,
    /// 1-based source column (0 until located against the source).
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(pos: usize, message: impl Into<String>) -> Self {
        ParseError {
            pos,
            line: 0,
            col: 0,
            message: message.into(),
        }
    }

    /// Fill in `line`/`col` from the byte offset. [`parse_program`] does
    /// this before returning, so callers always see located errors.
    pub fn locate(mut self, src: &str) -> Self {
        let pos = self.pos.min(src.len());
        let before = &src[..pos];
        self.line = before.matches('\n').count() as u32 + 1;
        self.col = (pos - before.rfind('\n').map_or(0, |i| i + 1)) as u32 + 1;
        self
    }

    /// View the error as a `P001` checker diagnostic with a
    /// [`Span::Source`](csfma_verify::Span::Source) position.
    pub fn to_diagnostic(&self) -> csfma_verify::Diagnostic {
        csfma_verify::Diagnostic::error(
            csfma_verify::Rule::ParseError,
            csfma_verify::Span::Source {
                line: self.line,
                col: self.col,
            },
            self.message.clone(),
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "parse error at {}:{}: {}",
                self.line, self.col, self.message
            )
        } else {
            write!(f, "parse error at byte {}: {}", self.pos, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Plus,
    Minus,
    Star,
    Slash,
    Eq,
    Semi,
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Out,
    In,
}

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '+' => {
                toks.push((i, Tok::Plus));
                i += 1;
            }
            '-' => {
                toks.push((i, Tok::Minus));
                i += 1;
            }
            '*' => {
                toks.push((i, Tok::Star));
                i += 1;
            }
            '/' => {
                toks.push((i, Tok::Slash));
                i += 1;
            }
            '=' => {
                toks.push((i, Tok::Eq));
                i += 1;
            }
            ';' => {
                toks.push((i, Tok::Semi));
                i += 1;
            }
            ',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            '[' => {
                toks.push((i, Tok::LBracket));
                i += 1;
            }
            ']' => {
                toks.push((i, Tok::RBracket));
                i += 1;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                toks.push((
                    start,
                    match word {
                        "out" => Tok::Out,
                        "in" => Tok::In,
                        _ => Tok::Ident(word.to_string()),
                    },
                ));
            }
            _ if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                let v: f64 = text.parse().map_err(|_| {
                    ParseError::new(start, format!("invalid number literal {text:?}"))
                })?;
                toks.push((start, Tok::Number(v)));
            }
            _ => return Err(ParseError::new(i, format!("unexpected character {c:?}"))),
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: &'a [(usize, Tok)],
    idx: usize,
    g: Cdfg,
    vars: HashMap<String, NodeId>,
    // the program carries `in` declarations: undefined names are errors
    strict: bool,
    // `in a [lo, hi];` bounds, in declaration order
    ranges: Vec<RangeDecl>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks
            .get(self.idx)
            .map(|(p, _)| *p)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(_, t)| t.clone());
        self.idx += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.idx += 1;
            Ok(())
        } else {
            Err(ParseError::new(self.pos(), format!("expected {what}")))
        }
    }

    fn lookup(&mut self, pos: usize, name: &str) -> Result<NodeId, ParseError> {
        if let Some(&id) = self.vars.get(name) {
            return Ok(id);
        }
        if self.strict {
            return Err(ParseError::new(
                pos,
                format!(
                    "undefined input name '{name}': this program declares its \
                     inputs with 'in', and '{name}' is neither declared nor assigned"
                ),
            ));
        }
        let id = self.g.input(name);
        self.vars.insert(name.to_string(), id);
        Ok(id)
    }

    fn factor(&mut self) -> Result<NodeId, ParseError> {
        let start = self.pos();
        match self.bump() {
            Some(Tok::Minus) => {
                let f = self.factor()?;
                Ok(self.g.push(crate::cdfg::Op::Neg, vec![f]))
            }
            Some(Tok::Ident(name)) => self.lookup(start, &name),
            Some(Tok::Number(v)) => Ok(self.g.constant(v)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            _ => Err(ParseError::new(
                self.pos(),
                "expected identifier, number, '-' or '('",
            )),
        }
    }

    fn term(&mut self) -> Result<NodeId, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.idx += 1;
                    let rhs = self.factor()?;
                    lhs = self.g.mul(lhs, rhs);
                }
                Some(Tok::Slash) => {
                    self.idx += 1;
                    let rhs = self.factor()?;
                    lhs = self.g.div(lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn expr(&mut self) -> Result<NodeId, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.idx += 1;
                    let rhs = self.term()?;
                    lhs = self.g.add(lhs, rhs);
                }
                Some(Tok::Minus) => {
                    self.idx += 1;
                    let rhs = self.term()?;
                    lhs = self.g.sub(lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    /// A possibly-negated number literal (range bounds admit `-1.5`).
    fn signed_number(&mut self) -> Result<f64, ParseError> {
        let neg = if self.peek() == Some(&Tok::Minus) {
            self.idx += 1;
            true
        } else {
            false
        };
        match self.bump() {
            Some(Tok::Number(v)) => Ok(if neg { -v } else { v }),
            _ => Err(ParseError::new(
                self.pos(),
                "expected number in range bound",
            )),
        }
    }

    fn stmt(&mut self) -> Result<(), ParseError> {
        if self.peek() == Some(&Tok::In) {
            self.idx += 1;
            loop {
                let pos = self.pos();
                match self.bump() {
                    Some(Tok::Ident(n)) => {
                        if self.vars.contains_key(&n) {
                            return Err(ParseError::new(
                                pos,
                                format!("duplicate declaration of input '{n}'"),
                            ));
                        }
                        let id = self.g.input(n.clone());
                        self.vars.insert(n.clone(), id);
                        if self.peek() == Some(&Tok::LBracket) {
                            self.idx += 1;
                            let lo = self.signed_number()?;
                            self.expect(&Tok::Comma, "',' between range bounds")?;
                            let hi = self.signed_number()?;
                            self.expect(&Tok::RBracket, "']' after range bounds")?;
                            self.ranges.push(RangeDecl { name: n, lo, hi });
                        }
                    }
                    _ => return Err(ParseError::new(pos, "expected input name after 'in'")),
                }
                if self.peek() == Some(&Tok::Comma) {
                    self.idx += 1;
                } else {
                    break;
                }
            }
            return self.expect(&Tok::Semi, "';'");
        }
        let is_out = if self.peek() == Some(&Tok::Out) {
            self.idx += 1;
            true
        } else {
            false
        };
        let name = match self.bump() {
            Some(Tok::Ident(n)) => n,
            _ => {
                return Err(ParseError::new(
                    self.pos(),
                    "expected identifier on the left of '='",
                ))
            }
        };
        self.expect(&Tok::Eq, "'='")?;
        let value = self.expr()?;
        self.expect(&Tok::Semi, "';'")?;
        self.vars.insert(name.clone(), value);
        if is_out {
            self.g.output(name, value);
        }
        Ok(())
    }
}

/// Parse a straight-line program into a [`Cdfg`].
///
/// ```
/// use csfma_hls::{asap_schedule, parse_program, OpTiming};
/// let g = parse_program("x1 = a*b + c*d; out y = e*x1 + f;").unwrap();
/// let len = asap_schedule(&g, &OpTiming::default()).length;
/// assert_eq!(len, 18); // two dependent multiply-add links at 5+4 cycles
/// ```
pub fn parse_program(src: &str) -> Result<Cdfg, ParseError> {
    parse_program_with_ranges(src).map(|(g, _)| g)
}

/// [`parse_program`], additionally returning the `in a [lo, hi];` bound
/// declarations in declaration order. The graph is identical to what
/// [`parse_program`] builds; the bounds are side-band facts for the
/// `R*` value-range analysis ([`crate::lint::lint_ranges`]).
pub fn parse_program_with_ranges(src: &str) -> Result<(Cdfg, Vec<RangeDecl>), ParseError> {
    parse_inner(src).map_err(|e| e.locate(src))
}

fn parse_inner(src: &str) -> Result<(Cdfg, Vec<RangeDecl>), ParseError> {
    let toks = tokenize(src)?;
    // any `in` declaration anywhere makes the whole program strict, so
    // a use *before* the declaration cannot silently mint an input
    let strict = toks.iter().any(|(_, t)| *t == Tok::In);
    let mut p = Parser {
        toks: &toks,
        idx: 0,
        g: Cdfg::new(),
        vars: HashMap::new(),
        strict,
        ranges: Vec::new(),
    };
    while p.peek().is_some() {
        p.stmt()?;
    }
    if p.g.outputs().is_empty() {
        return Err(ParseError::new(src.len(), "program has no 'out' statement"));
    }
    // The parser only builds via checked `push`, so this cannot fail; keep
    // the non-panicking path anyway so a parser bug surfaces as an error.
    if let Err(diags) = p.g.validate_diagnostics() {
        return Err(ParseError::new(
            src.len(),
            format!(
                "parser produced an invalid graph:\n{}",
                csfma_verify::render_report(&diags)
            ),
        ));
    }
    Ok((p.g, p.ranges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdfg::Op;
    use crate::interp::eval_f64;
    use crate::sched::{asap_schedule, OpTiming};

    #[test]
    fn listing1_parses() {
        let g = parse_program("x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;").unwrap();
        assert_eq!(g.count_ops(|o| matches!(o, Op::Mul)), 6);
        assert_eq!(g.count_ops(|o| matches!(o, Op::Add)), 3);
        assert_eq!(asap_schedule(&g, &OpTiming::default()).length, 27);
    }

    #[test]
    fn precedence_and_parens() {
        let g = parse_program("out y = a + b * (c - d) / e;").unwrap();
        let ins: std::collections::HashMap<String, f64> =
            [("a", 1.0), ("b", 6.0), ("c", 5.0), ("d", 3.0), ("e", 4.0)]
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect();
        assert_eq!(eval_f64(&g, &ins)["y"], 1.0 + 6.0 * (5.0 - 3.0) / 4.0);
    }

    #[test]
    fn unary_minus_and_constants() {
        let g = parse_program("out y = -x * 2.5 + 1e-3;").unwrap();
        let ins = [("x".to_string(), 4.0)].into_iter().collect();
        assert_eq!(eval_f64(&g, &ins)["y"], -10.0 + 1e-3);
    }

    #[test]
    fn comments_and_reassignment() {
        let g = parse_program("# accumulate twice\nacc = a * b;\nacc = acc + c;\nout y = acc;")
            .unwrap();
        let ins: std::collections::HashMap<String, f64> = [("a", 2.0), ("b", 3.0), ("c", 1.0)]
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        assert_eq!(eval_f64(&g, &ins)["y"], 7.0);
    }

    #[test]
    fn errors_are_positioned() {
        let e = parse_program("out y = a + ;").unwrap_err();
        assert!(e.message.contains("expected identifier"));
        assert_eq!((e.line, e.col), (1, 14));
        assert!(parse_program("y = a;")
            .unwrap_err()
            .message
            .contains("no 'out'"));
        assert!(parse_program("out y = a $ b;").is_err());
        assert!(parse_program("out y = 1.2.3;").is_err());
    }

    #[test]
    fn errors_locate_lines_and_convert_to_diagnostics() {
        // the parser reports at the token after the offending one ('2')
        let e = parse_program("x = a*b;\nout y = x + * 2;").unwrap_err();
        assert_eq!((e.line, e.col), (2, 15));
        assert!(e.to_string().contains("2:15"), "{e}");
        let d = e.to_diagnostic();
        assert_eq!(d.rule, csfma_verify::Rule::ParseError);
        assert_eq!(d.span, csfma_verify::Span::Source { line: 2, col: 15 });
        // EOF errors clamp to one past the last line's end
        let eof = parse_program("out y = a").unwrap_err();
        assert_eq!((eof.line, eof.col), (1, 10));
    }

    #[test]
    fn in_declarations_enable_strict_mode() {
        // declared-but-unused inputs still appear, in declaration order
        let g = parse_program("in a, b, unused;\nout y = a + b;").unwrap();
        let names: Vec<&str> = g
            .nodes()
            .iter()
            .filter_map(|n| match &n.op {
                Op::Input(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["a", "b", "unused"]);
        // an undefined name is a positioned error, not a fresh input
        let e = parse_program("in a, b;\nout y = a * c;").unwrap_err();
        assert!(e.message.contains("undefined input name 'c'"), "{e}");
        assert_eq!((e.line, e.col), (2, 13));
        // assigned intermediates stay referencable under strictness
        assert!(parse_program("in a;\nt = a * a;\nout y = t + a;").is_ok());
        // declaring twice is an error
        let dup = parse_program("in a, a;\nout y = a;").unwrap_err();
        assert!(dup.message.contains("duplicate declaration"), "{dup}");
        // strictness applies even to uses before the declaration
        let early = parse_program("out y = a * c;\nin a;").unwrap_err();
        assert!(
            early.message.contains("undefined input name 'a'"),
            "{early}"
        );
        // without declarations the legacy auto-input behavior is intact
        assert!(parse_program("out y = a * c;").is_ok());
    }

    #[test]
    fn range_declarations_parse_and_are_side_band() {
        let (g, ranges) =
            parse_program_with_ranges("in a [0.5, 2.0], b, c [-1e3, 1e3];\nout y = a*b + c;")
                .unwrap();
        assert_eq!(ranges.len(), 2);
        assert_eq!(
            (ranges[0].name.as_str(), ranges[0].lo, ranges[0].hi),
            ("a", 0.5, 2.0)
        );
        assert_eq!(
            (ranges[1].name.as_str(), ranges[1].lo, ranges[1].hi),
            ("c", -1e3, 1e3)
        );
        // bounds never change the graph
        let plain = parse_program("in a, b, c;\nout y = a*b + c;").unwrap();
        assert_eq!(g.len(), plain.len());
        // parse_program accepts and discards bounds
        assert!(parse_program("in a [0.5, 2.0];\nout y = a;").is_ok());
        // inverted / non-finite bounds are R003's job, not the parser's
        let (_, r) = parse_program_with_ranges("in a [2.0, -2.0];\nout y = a;").unwrap();
        assert_eq!((r[0].lo, r[0].hi), (2.0, -2.0));
        // malformed bounds are positioned parse errors
        assert!(parse_program("in a [0.5;\nout y = a;").is_err());
        assert!(parse_program("in a [0.5, b];\nout y = a;").is_err());
        assert!(parse_program("in a [, 1.0];\nout y = a;").is_err());
    }

    #[test]
    fn parsed_program_fuses() {
        use crate::cdfg::FmaKind;
        use crate::fuse::{fuse_critical_paths, FusionConfig};
        let g = parse_program("x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;").unwrap();
        let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs));
        assert!(rep.final_length < rep.initial_length);
        assert!(rep.fma_nodes >= 2);
    }
}
