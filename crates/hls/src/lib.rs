//! # csfma-hls — Nymble-style datapath compilation with automatic
//! P/FCS-FMA insertion (Sec. III-I, Fig. 12)
//!
//! The paper integrates its FMA units into the Nymble C-to-hardware
//! compiler: the datapath is first assembled from IEEE 754 operators and
//! scheduled; then multiply→add pairs **on the critical path** are
//! greedily replaced by carry-save FMA units wrapped in format
//! conversions; redundant back-to-back conversions between chained FMAs
//! are removed; the datapath is rescheduled; and the procedure repeats
//! until no further insertion helps.
//!
//! This crate provides the pieces of that flow:
//!
//! * [`Cdfg`] — a control-data-flow-graph IR for straight-line
//!   floating-point datapaths (the shape CVXGEN solvers compile to),
//! * [`interp`] — reference (f64) and bit-accurate (soft-float +
//!   behavioral FMA) interpreters, used to prove the pass preserves
//!   semantics,
//! * [`compile`](mod@compile) — the batch execution engine: a one-time lowering of a
//!   validated graph to a flat register-slot instruction [`Tape`]
//!   (cached by graph identity) with `f64` and bit-accurate backends and
//!   deterministic parallel [`Tape::eval_batch`],
//! * [`sched`] — ASAP / resource-constrained list scheduling with the
//!   200 MHz operator latency table,
//! * [`fuse`] — the Fig. 12 fusion pass,
//! * [`lint`] — the adapter into `csfma-verify`'s static checker; the
//!   rewrite passes re-run the checker after every trial rewrite in
//!   debug builds.

#![warn(missing_docs)]

pub mod cdfg;
pub mod compile;
pub mod fuse;
pub mod interp;
pub mod jit;
pub mod lint;
pub mod many;
pub mod mutate;
pub mod opt;
pub mod optimize;
pub mod parser;
pub mod printer;
pub mod profile;
pub mod robust;
pub mod sched;

pub use cdfg::{Cdfg, Domain, FmaKind, NodeId, Op};
pub use compile::{
    clear_tape_cache, compile, compile_cached, compile_cached_with, compile_cached_with_profiled,
    compile_scheduled, compile_with_formats, compile_with_formats_and_options,
    compile_with_formats_and_options_profiled, compile_with_options, compile_with_options_profiled,
    graph_fingerprint, set_tape_cache_capacity, set_tape_cache_shards, tape_cache_shards,
    tape_cache_stats, CompileError, CompileOptions, Instr, Tape, TapeBackend, TapeCacheStats,
    TapeScratch, DEFAULT_TAPE_CACHE_CAPACITY, MAX_TAPE_CACHE_SHARDS,
};
pub use fuse::{fuse_critical_paths, FusionConfig, FusionReport};
pub use jit::{
    compile_module, jit_available, jit_refusal, lint_jit, JitModule, JitRefusal, JitSemantics,
};
pub use lint::{
    capacity_list, debug_assert_tape_clean, lint_dataflow, lint_ranges, lint_schedule,
    promotion_mask, schedule_view, to_check_graph, to_source_view, to_tape_view, verify_tape,
};
pub use many::{eval_many, eval_many_profiled, EvalManyOutput, EvalManyRequest};
pub use mutate::{apply_mutation, ALL_MUTATIONS};
pub use opt::OptStats;
pub use optimize::{optimize, OptimizeReport};
pub use parser::{parse_program, parse_program_with_ranges, ParseError};
pub use printer::{to_source, to_source_with_ranges};
pub use profile::{robust_counts, PipelineReport, Profiler, RobustCounts, StageRecord};
pub use robust::{BatchReport, RobustOptions, RowOutcome};
pub use sched::{
    alap_schedule, asap_schedule, critical_path, list_schedule, occupancy_chart, OpTiming,
    ResourceKind, ResourceLimits, Schedule,
};

#[cfg(test)]
mod tests;
