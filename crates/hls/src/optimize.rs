//! Classical datapath cleanups that run before FMA insertion: constant
//! folding, algebraic identities, and common-subexpression elimination.
//!
//! Generated solver code (and hand-written DSP kernels) is full of
//! repeated products and `x*1 / x+0` patterns; shrinking the graph first
//! makes the schedules tighter and the fusion pass cheaper. All rewrites
//! preserve IEEE semantics: identities that would change signed-zero or
//! NaN behavior on *variable* inputs are only applied where safe for the
//! finite-math datapaths Nymble compiles (documented per rule).

use crate::cdfg::{Cdfg, NodeId, Op};

/// Outcome of the cleanup pipeline.
#[derive(Clone, Debug)]
pub struct OptimizeReport {
    /// The optimized graph.
    pub optimized: Cdfg,
    /// Nodes before.
    pub nodes_before: usize,
    /// Nodes after.
    pub nodes_after: usize,
}

/// A structural key identifying a node's computation for CSE.
#[derive(Clone, PartialEq)]
enum Key {
    Input(String),
    Const(u64), // f64 bits (canonicalized NaN never appears in Const)
    Op(&'static str, bool, Vec<NodeId>),
    Opaque(NodeId),
}

fn commutative(op: &Op) -> bool {
    matches!(op, Op::Add | Op::Mul)
}

fn op_tag(op: &Op) -> &'static str {
    match op {
        Op::Add => "add",
        Op::Sub => "sub",
        Op::Mul => "mul",
        Op::Div => "div",
        Op::Neg => "neg",
        _ => "other",
    }
}

/// Run constant folding + identities + CSE to a fixpoint (bounded).
pub fn optimize(g: &Cdfg) -> OptimizeReport {
    let nodes_before = g.len();
    let mut cur = g.clone();
    for _ in 0..8 {
        let next = one_pass(&cur);
        let next = next.eliminate_dead().0;
        if next.len() == cur.len() {
            cur = next;
            break;
        }
        cur = next;
    }
    cur.validate();
    crate::lint::debug_assert_dataflow_clean(
        &cur,
        &crate::sched::OpTiming::default(),
        "optimizer result",
    );
    OptimizeReport {
        nodes_after: cur.len(),
        optimized: cur,
        nodes_before,
    }
}

fn const_of(g: &Cdfg, id: NodeId) -> Option<f64> {
    match g.nodes()[id].op {
        Op::Const(v) => Some(v),
        _ => None,
    }
}

fn intern(
    out: &mut Cdfg,
    seen: &mut Vec<(Key, NodeId)>,
    key: Key,
    op: Op,
    args: Vec<NodeId>,
) -> NodeId {
    if !matches!(key, Key::Opaque(_)) {
        if let Some((_, id)) = seen.iter().find(|(k, _)| *k == key) {
            return *id;
        }
    }
    let id = out.push(op, args);
    seen.push((key, id));
    id
}

fn one_pass(g: &Cdfg) -> Cdfg {
    let mut out = Cdfg::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(g.len());
    // CSE table over the *output* graph
    let mut seen: Vec<(Key, NodeId)> = Vec::new();

    for n in g.nodes() {
        let id = match &n.op {
            Op::Input(name) => intern(
                &mut out,
                &mut seen,
                Key::Input(name.clone()),
                Op::Input(name.clone()),
                vec![],
            ),
            Op::Const(v) => intern(
                &mut out,
                &mut seen,
                Key::Const(v.to_bits()),
                Op::Const(*v),
                vec![],
            ),
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Neg => {
                let args: Vec<NodeId> = n.args.iter().map(|&x| map[x]).collect();
                // constant folding
                let cvals: Vec<Option<f64>> = args.iter().map(|&x| const_of(&out, x)).collect();
                let folded = match (&n.op, cvals.as_slice()) {
                    (Op::Add, [Some(x), Some(y)]) => Some(x + y),
                    (Op::Sub, [Some(x), Some(y)]) => Some(x - y),
                    (Op::Mul, [Some(x), Some(y)]) => Some(x * y),
                    (Op::Div, [Some(x), Some(y)]) if *y != 0.0 => Some(x / y),
                    (Op::Neg, [Some(x)]) => Some(-x),
                    _ => None,
                };
                if let Some(v) = folded {
                    intern(
                        &mut out,
                        &mut seen,
                        Key::Const(v.to_bits()),
                        Op::Const(v),
                        vec![],
                    )
                } else {
                    // algebraic identities (finite-math safe subset)
                    let ident = match &n.op {
                        // x * 1 = x ; 1 * x = x (exact in IEEE)
                        Op::Mul if cvals[0] == Some(1.0) => Some(args[1]),
                        Op::Mul if cvals[1] == Some(1.0) => Some(args[0]),
                        // x / 1 = x
                        Op::Div if cvals[1] == Some(1.0) => Some(args[0]),
                        // x + 0 = x and x - 0 = x (exact except the
                        // -0 + +0 corner, which solver datapaths never
                        // depend on; documented finite-math rule)
                        Op::Add if cvals[0] == Some(0.0) => Some(args[1]),
                        Op::Add if cvals[1] == Some(0.0) => Some(args[0]),
                        Op::Sub if cvals[1] == Some(0.0) => Some(args[0]),
                        // --x = x
                        Op::Neg if matches!(out.nodes()[args[0]].op, Op::Neg) => {
                            Some(out.nodes()[args[0]].args[0])
                        }
                        _ => None,
                    };
                    if let Some(target) = ident {
                        target
                    } else {
                        let mut key_args = args.clone();
                        if commutative(&n.op) {
                            key_args.sort_unstable();
                        }
                        intern(
                            &mut out,
                            &mut seen,
                            Key::Op(op_tag(&n.op), false, key_args),
                            n.op.clone(),
                            args,
                        )
                    }
                }
            }
            // fused/conversion/output nodes pass through opaquely (CSE on
            // conversions already happens in the fusion pass)
            other => {
                let args: Vec<NodeId> = n.args.iter().map(|&x| map[x]).collect();
                let id = out.push(other.clone(), args);
                seen.push((Key::Opaque(id), id));
                id
            }
        };
        map.push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::eval_f64;
    use crate::parser::parse_program;
    use proptest::prelude::*;
    use std::collections::HashMap as Map;

    fn count(g: &Cdfg, tag: &str) -> usize {
        g.count_ops(|o| op_tag(o) == tag)
    }

    #[test]
    fn folds_constants() {
        let g = parse_program("out y = a * (2.0 + 3.0);").unwrap();
        let r = optimize(&g);
        assert_eq!(count(&r.optimized, "add"), 0);
        let ins: Map<String, f64> = [("a".to_string(), 2.0)].into_iter().collect();
        assert_eq!(eval_f64(&r.optimized, &ins)["y"], 10.0);
    }

    #[test]
    fn applies_identities() {
        let g = parse_program("out y = (a * 1.0) + 0.0 - 0.0;").unwrap();
        let r = optimize(&g);
        assert_eq!(count(&r.optimized, "mul"), 0);
        assert_eq!(count(&r.optimized, "add"), 0);
        assert_eq!(count(&r.optimized, "sub"), 0);
    }

    #[test]
    fn cse_merges_repeated_products() {
        let g = parse_program("out y = a*b + a*b + b*a;").unwrap();
        let r = optimize(&g);
        // commutative key: one multiply survives
        assert_eq!(count(&r.optimized, "mul"), 1);
        let ins: Map<String, f64> = [("a".to_string(), 3.0), ("b".to_string(), 4.0)]
            .into_iter()
            .collect();
        assert_eq!(eval_f64(&r.optimized, &ins)["y"], 36.0);
    }

    #[test]
    fn double_negation_cancels() {
        let g = parse_program("out y = -(-x);").unwrap();
        let r = optimize(&g);
        assert_eq!(g.count_ops(|o| matches!(o, Op::Neg)), 2);
        assert_eq!(r.optimized.count_ops(|o| matches!(o, Op::Neg)), 0);
    }

    #[test]
    fn shrinks_generated_solver_code() {
        // a dense-ish synthetic kernel with redundancy (the real ldlsolve
        // shrink test lives in the workspace integration tests, since
        // csfma-solvers depends on this crate)
        let mut src = String::new();
        for i in 0..6 {
            src.push_str(&format!("y{i} = a{i}*w + b{i}*w + a{i}*w;\n"));
        }
        src.push_str("out z = y0 + y1 + y2 + y3 + y4 + y5;");
        let g = parse_program(&src).unwrap();
        let r = optimize(&g);
        assert!(
            r.nodes_after < r.nodes_before,
            "{} -> {}",
            r.nodes_before,
            r.nodes_after
        );
        assert_eq!(count(&r.optimized, "mul"), 12); // a_i*w deduped
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Optimization preserves values on random DAGs built from a small
        /// grammar with repeated subexpressions and constants.
        #[test]
        fn prop_optimize_preserves_values(
            ops in prop::collection::vec((0usize..6, 0usize..32, 0usize..32), 3..28),
            vals in prop::collection::vec(-4.0f64..4.0, 4),
        ) {
            let mut g = Cdfg::new();
            let mut pool: Vec<NodeId> = (0..4).map(|i| g.input(format!("v{i}"))).collect();
            pool.push(g.constant(0.0));
            pool.push(g.constant(1.0));
            pool.push(g.constant(2.5));
            for &(op, i1, i2) in &ops {
                let x = pool[i1 % pool.len()];
                let y = pool[i2 % pool.len()];
                let id = match op {
                    0 => g.add(x, y),
                    1 => g.sub(x, y),
                    2 | 3 => g.mul(x, y),
                    4 => g.push(Op::Neg, vec![x]),
                    _ => g.add(x, x),
                };
                pool.push(id);
            }
            g.output("y", *pool.last().unwrap());
            let ins: Map<String, f64> =
                vals.iter().enumerate().map(|(i, v)| (format!("v{i}"), *v)).collect();
            let want = eval_f64(&g, &ins)["y"];
            let r = optimize(&g);
            prop_assert!(r.nodes_after <= r.nodes_before);
            let got = eval_f64(&r.optimized, &ins)["y"];
            if want.is_nan() {
                prop_assert!(got.is_nan());
            } else {
                prop_assert_eq!(got, want);
            }
        }
    }
}
