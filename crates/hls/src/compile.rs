//! One-time compilation of a [`Cdfg`] into a flat instruction tape, plus
//! a batch executor over it.
//!
//! The scalar interpreters in [`interp`](crate::interp) re-walk the graph
//! for every input vector: `String`-keyed `HashMap` lookups per input,
//! a fresh `Vec<Option<Val>>` per call, and the full soft-float operator
//! stack for every IEEE node. That is the right shape for an *oracle* —
//! maximally close to the definition — and exactly the wrong shape for
//! throughput. This module lowers a validated graph **once** into a
//! [`Tape`]:
//!
//! * a topologically-ordered list of [`Instr`]s addressing **dense
//!   register slots** (two banks: binary64 and carry-save), with slots
//!   reused after a value's last read, so the register file stays small
//!   and hot in cache;
//! * input names resolved to positional indices, constants pre-converted
//!   into a pool — no string hashing on the execution path;
//! * a process-wide **tape cache** keyed by the graph's canonical
//!   encoding ([`compile_cached`]), so repeated evaluation requests for
//!   the same datapath skip recompilation entirely.
//!
//! Two backends execute the tape:
//!
//! * [`TapeBackend::F64`] reproduces [`eval_f64`](crate::interp::eval_f64)
//!   bit for bit (host doubles, fused nodes as `mul_add`);
//! * [`TapeBackend::BitAccurate`] reproduces
//!   [`eval_bit_accurate`](crate::interp::eval_bit_accurate) bit for bit.
//!   IEEE nodes run on the **host FPU** through the guarded fast path of
//!   [`csfma_softfloat::batch`] (soft-float semantics at host speed — see
//!   that module for the equivalence argument); fused nodes still run the
//!   behavioral carry-save units, which *are* the model.
//!
//! [`Tape::eval_batch`] evaluates many input vectors with deterministic
//! chunked work distribution
//! ([`par_chunks_indexed`]):
//! results are bitwise identical for any worker count.
//!
//! Compilation is **gated on the static checker**: a graph carrying
//! error-severity `D*` (dataflow), `S*` (schedule, via
//! [`compile_scheduled`]) or `W*` (format, via [`compile_with_formats`])
//! diagnostics is refused with a structured [`CompileError`] instead of
//! producing a tape that would panic or silently miscompute.

use crate::cdfg::{Cdfg, FmaKind, Op};
use crate::interp::format_of;
use crate::lint::{lint_dataflow, lint_schedule};
use crate::opt::{optimize_graph, OptStats};
use crate::profile;
use crate::sched::{OpTiming, ResourceLimits, Schedule};
use csfma_core::batch::{par_chunks_indexed, CHUNK_ROWS};
use csfma_core::{CsFmaFormat, CsFmaUnit, CsOperand, FmaScratch, PlaneScratch};
use csfma_obs::Profiler;
use csfma_softfloat::batch as sfb;
use csfma_softfloat::{FpFormat, Round, SoftFloat};
use csfma_verify::{check_format, Diagnostic, Rule, Severity, Span};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

const F: FpFormat = FpFormat::BINARY64;

/// Structured compilation failure: the graph carries outstanding
/// error-severity checker diagnostics (`D*`, `S*` or `W*` rules).
#[derive(Clone, Debug)]
pub struct CompileError {
    /// Every error-severity finding that blocked compilation.
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot compile tape: {} outstanding checker error(s)\n{}",
            self.diagnostics.len(),
            csfma_verify::render_report(&self.diagnostics)
        )
    }
}

impl std::error::Error for CompileError {}

/// Knobs for [`compile_with_options`]. The default runs the post-gate
/// optimizer ([`crate::opt`]); `optimize: false` lowers the gated graph
/// verbatim (differential suites compare the two tapes byte-for-byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Run constant folding / CSE / DCE / pressure-aware reordering
    /// between the checker gate and lowering.
    pub optimize: bool,
    /// Eagerly build the native JIT module ([`crate::jit`]) for the
    /// compiled tape, inside a `codegen` stage span, so the first
    /// `--backend jit` evaluation pays no lazy-build latency. The cache
    /// key includes this flag. Off by default: every other backend
    /// never needs the module, and a `jit` evaluation of a lazily
    /// compiled tape builds it on first use anyway.
    pub codegen: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            optimize: true,
            codegen: false,
        }
    }
}

/// Which evaluator semantics the tape executes with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TapeBackend {
    /// Host-double semantics — bit-identical to
    /// [`eval_f64`](crate::interp::eval_f64).
    F64,
    /// Soft-float + behavioral carry-save units — bit-identical to
    /// [`eval_bit_accurate`](crate::interp::eval_bit_accurate).
    BitAccurate,
    /// Pure scalar soft-float operators plus the behavioral carry-save
    /// units, with none of the hosted fast paths — the
    /// [`interp`](crate::interp) oracle's operator stack replayed over
    /// the tape. Bit-identical to [`TapeBackend::BitAccurate`] and
    /// several times slower; it is the trusted last rung of the robust
    /// executor's fallback ladder (see [`crate::robust`]).
    Oracle,
    /// Native machine code for the scalar IEEE fast path
    /// ([`crate::jit`]), bit-identical to [`TapeBackend::BitAccurate`]
    /// by construction: rows (or whole tapes) the emitted guards cannot
    /// license fall back to the bit-accurate interpreter, so the only
    /// difference is speed. See `docs/JIT.md`.
    Jit,
}

/// One tape instruction. Register operands index the binary64 bank
/// (`r*`) or the carry-save bank (`c*`); both banks are dense and slots
/// are reused once their value is dead.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `r[dst] = row[input]`
    LoadInput {
        /// Destination binary64 slot.
        dst: u32,
        /// Index into the row's input values.
        input: u32,
    },
    /// `r[dst] = consts[idx]`
    LoadConst {
        /// Destination binary64 slot.
        dst: u32,
        /// Index into the tape's constant pool.
        idx: u32,
    },
    /// `r[dst] = r[a] + r[b]`
    Add {
        /// Destination binary64 slot.
        dst: u32,
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `r[dst] = r[a] - r[b]`
    Sub {
        /// Destination binary64 slot.
        dst: u32,
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `r[dst] = r[a] * r[b]`
    Mul {
        /// Destination binary64 slot.
        dst: u32,
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// `r[dst] = r[a] / r[b]`
    Div {
        /// Destination binary64 slot.
        dst: u32,
        /// Dividend slot.
        a: u32,
        /// Divisor slot.
        b: u32,
    },
    /// `r[dst] = -r[a]`
    Neg {
        /// Destination binary64 slot.
        dst: u32,
        /// Operand slot.
        a: u32,
    },
    /// `c[dst] = fma(c[acc], ±r[b], c[mulc])` on the unit for `kind`
    Fma {
        /// Target unit.
        kind: FmaKind,
        /// Negate the IEEE `B` input.
        negate_b: bool,
        /// Destination carry-save slot.
        dst: u32,
        /// Addend (carry-save).
        acc: u32,
        /// `B` multiplicand (binary64).
        b: u32,
        /// Chained multiplicand (carry-save).
        mulc: u32,
    },
    /// `c[dst] = ieee_to_cs(r[src])` in `kind`'s transport format
    IeeeToCs {
        /// Carry-save format family to convert into.
        kind: FmaKind,
        /// Destination carry-save slot.
        dst: u32,
        /// Source binary64 slot.
        src: u32,
    },
    /// `r[dst] = cs_to_ieee(c[src])` (resolve + normalize + round)
    CsToIeee {
        /// Destination binary64 slot.
        dst: u32,
        /// Source carry-save slot.
        src: u32,
    },
    /// `out[output] = r[src]`
    Store {
        /// Index into the row's output values.
        output: u32,
        /// Source binary64 slot.
        src: u32,
    },
}

/// A compiled datapath: flat instructions over dense register slots.
/// Build one with [`compile`] (or [`compile_cached`]); evaluate rows
/// with [`Tape::eval_row`] or batches with [`Tape::eval_batch`].
#[derive(Clone, Debug)]
pub struct Tape {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) inputs: Vec<String>,
    pub(crate) outputs: Vec<String>,
    pub(crate) consts: Vec<f64>,
    pub(crate) consts_canonical: Vec<f64>,
    pub(crate) n_f64_regs: usize,
    pub(crate) n_cs_regs: usize,
    pub(crate) pcs_format: CsFmaFormat,
    pub(crate) fcs_format: CsFmaFormat,
    pub(crate) fingerprint: u64,
    pub(crate) source_nodes: usize,
    pub(crate) opt: OptStats,
    /// Per-instruction provenance: `instr_nodes[i]` is the **source**
    /// graph node instruction `i` was lowered from (mapped back through
    /// the optimizer's origin map when the tape was optimized), so
    /// execution-time diagnostics can name the offending node.
    pub(crate) instr_nodes: Vec<u32>,
    /// Per-instruction fast-path promotion mask (empty ⇔ no promotion):
    /// `promoted[i]` lets the bit-accurate backend run IEEE instruction
    /// `i` as the raw host operation, skipping the guarded soft-float
    /// fallback. Only set via [`Tape::set_promoted`] after a value-range
    /// proof that the guard can never fire (see `lint::lint_ranges`), so
    /// promoted evaluation stays bit-identical.
    pub(crate) promoted: Vec<bool>,
    /// Per-instruction bit-plane eligibility (sibling of `promoted`):
    /// `plane_eligible[i]` lets the bit-accurate backend evaluate fused
    /// instruction `i` with the digit-plane chunk kernel
    /// (`csfma_core::plane_fma_chunk`) on full chunks, 64 lanes per gate
    /// level. Computed at lowering (every `Fma` qualifies — the kernel
    /// is format-generic and resolves exception lanes on the scalar
    /// path); a separate flag so future analyses can veto instructions
    /// and so tests can audit the dispatch decision.
    pub(crate) plane_eligible: Vec<bool>,
    /// Lazily built native module for [`TapeBackend::Jit`]
    /// ([`crate::jit`], bit-accurate semantics). `None` inside the cell
    /// means module construction was attempted and refused (fused tape,
    /// platform, or `CSFMA_JIT=off`) — the backend then interprets
    /// every row. [`Tape::set_promoted`] resets the cell: the guard set
    /// depends on the promotion mask, so a stale module would break
    /// bit-identity.
    pub(crate) jit: OnceLock<Option<Arc<crate::jit::JitModule>>>,
}

/// Reusable per-worker register file for tape execution. One scratch per
/// thread amortizes the carry-save slot allocations over a whole batch.
#[derive(Clone, Debug)]
pub struct TapeScratch {
    pub(crate) f: Vec<f64>,
    pub(crate) cs: Vec<CsOperand>,
    // the f64 backend models CS-domain values as plain doubles
    // (conversions are wiring there), so it shadows the CS bank here
    pub(crate) cs_f: Vec<f64>,
    pub(crate) pcs: CsFmaUnit,
    pub(crate) fcs: CsFmaUnit,
    pub(crate) fma: FmaScratch,
}

/// Per-worker structure-of-arrays register file for chunked batch
/// execution: each register slot becomes a plane of [`CHUNK_ROWS`]
/// contiguous lanes, evaluated column-wise one instruction at a time.
#[derive(Clone, Debug)]
pub(crate) struct ChunkScratch {
    pub(crate) f: Vec<f64>,
    pub(crate) cs: Vec<CsOperand>,
    pub(crate) cs_f: Vec<f64>,
    pub(crate) pcs: CsFmaUnit,
    pub(crate) fcs: CsFmaUnit,
    pub(crate) fma: FmaScratch,
    // bit-plane kernel working storage + the per-chunk B-lane latch
    pub(crate) plane: PlaneScratch,
    pub(crate) b_lane: Vec<SoftFloat>,
}

/// Process-wide recycling pool for [`ChunkScratch`] register files.
///
/// The work-stealing scheduler builds one scratch per participating
/// worker per job; without a pool that is a fresh set of register-plane
/// and `FmaScratch`/`PlaneScratch` allocations on every `eval_batch`
/// call. The pool caps retained scratches at [`SCRATCH_POOL_CAP`] (a few
/// workers' worth) and hands them back dirty: every tape register is
/// written before it is read (validated by the T001 def-before-use rule,
/// `crates/verify/src/tape.rs`), so stale contents can never reach an
/// output byte — which is also why recycling across *different* tapes is
/// sound.
static CHUNK_SCRATCH_POOL: Mutex<Vec<ChunkScratch>> = Mutex::new(Vec::new());

/// Retained-scratch cap: two full worker complements
/// (`2 × csfma_core::batch::MAX_WORKERS`).
const SCRATCH_POOL_CAP: usize = 2 * csfma_core::batch::MAX_WORKERS;

/// A [`ChunkScratch`] on loan from [`CHUNK_SCRATCH_POOL`]; returns
/// itself to the pool on drop (when the pool is below its cap).
pub(crate) struct PooledChunkScratch(Option<ChunkScratch>);

impl std::ops::Deref for PooledChunkScratch {
    type Target = ChunkScratch;
    fn deref(&self) -> &ChunkScratch {
        self.0.as_ref().expect("scratch taken")
    }
}

impl std::ops::DerefMut for PooledChunkScratch {
    fn deref_mut(&mut self) -> &mut ChunkScratch {
        self.0.as_mut().expect("scratch taken")
    }
}

impl Drop for PooledChunkScratch {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            let mut pool = CHUNK_SCRATCH_POOL.lock().unwrap_or_else(|e| e.into_inner());
            if pool.len() < SCRATCH_POOL_CAP {
                pool.push(s);
            }
        }
    }
}

/// FNV-1a over the canonical graph encoding — the identity the tape
/// cache is keyed by (the full encoding, not just this digest, to make
/// collisions impossible; the digest is for reporting).
pub fn graph_fingerprint(g: &Cdfg) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in canonical_encoding(g) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Byte-exact structural identity of a graph: operation tags, constant
/// bit patterns, input/output names, FMA kinds and argument edges. Two
/// graphs with equal encodings compile to equal tapes.
fn canonical_encoding(g: &Cdfg) -> Vec<u8> {
    let mut buf = Vec::with_capacity(g.len() * 8);
    let push_str = |buf: &mut Vec<u8>, s: &str| {
        buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
        buf.extend_from_slice(s.as_bytes());
    };
    let kind_tag = |k: FmaKind| match k {
        FmaKind::Pcs => 0u8,
        FmaKind::Fcs => 1u8,
    };
    for n in g.nodes() {
        match &n.op {
            Op::Input(name) => {
                buf.push(0);
                push_str(&mut buf, name);
            }
            Op::Const(v) => {
                buf.push(1);
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            Op::Add => buf.push(2),
            Op::Sub => buf.push(3),
            Op::Mul => buf.push(4),
            Op::Div => buf.push(5),
            Op::Neg => buf.push(6),
            Op::Fma { kind, negate_b } => {
                buf.push(7);
                buf.push(kind_tag(*kind));
                buf.push(*negate_b as u8);
            }
            Op::IeeeToCs(kind) => {
                buf.push(8);
                buf.push(kind_tag(*kind));
            }
            Op::CsToIeee(kind) => {
                buf.push(9);
                buf.push(kind_tag(*kind));
            }
            Op::Output(name) => {
                buf.push(10);
                push_str(&mut buf, name);
            }
        }
        for &a in &n.args {
            buf.extend_from_slice(&(a as u32).to_le_bytes());
        }
    }
    buf
}

fn errors_only(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

/// Compile a graph into a tape, gating on the `D*` dataflow rules and
/// the `W*` rules of the standard transport formats the graph uses.
/// Runs the post-gate optimizer; see [`compile_with_options`] to turn
/// it off.
pub fn compile(g: &Cdfg) -> Result<Tape, CompileError> {
    compile_with_options(g, CompileOptions::default())
}

/// [`compile`] with explicit [`CompileOptions`].
pub fn compile_with_options(g: &Cdfg, opts: CompileOptions) -> Result<Tape, CompileError> {
    compile_with_options_profiled(g, opts, &mut Profiler::disabled())
}

/// [`compile_with_options`], recording `compile` → `gate` / `optimize` /
/// `lower` stage spans and optimizer counters into `prof`. The
/// non-profiled entry points are this function with a disabled profiler;
/// instrumentation never changes the produced tape.
pub fn compile_with_options_profiled(
    g: &Cdfg,
    opts: CompileOptions,
    prof: &mut Profiler,
) -> Result<Tape, CompileError> {
    #[cfg(test)]
    if PANIC_NEXT_COMPILE.swap(false, Ordering::Relaxed) {
        panic!("injected compiler panic (test hook)");
    }
    compile_with_formats_and_options_profiled(
        g,
        format_of(FmaKind::Pcs),
        format_of(FmaKind::Fcs),
        opts,
        prof,
    )
}

/// Test hook: make the next [`compile_with_options`] call panic, to
/// exercise the cache's poisoning guard.
#[cfg(test)]
static PANIC_NEXT_COMPILE: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// [`compile`] with explicit transport formats (ablation studies swap in
/// non-standard geometries). The `W*` width rules run on whichever
/// formats the graph's fused nodes actually reference; a format carrying
/// `W*` errors refuses to compile.
pub fn compile_with_formats(
    g: &Cdfg,
    pcs_format: CsFmaFormat,
    fcs_format: CsFmaFormat,
) -> Result<Tape, CompileError> {
    compile_with_formats_and_options(g, pcs_format, fcs_format, CompileOptions::default())
}

/// [`compile_with_formats`] with explicit [`CompileOptions`]. The
/// checker gate always runs on the **caller's** graph; the optimizer
/// (when enabled) runs strictly after it, and the tape's
/// [`fingerprint`](Tape::fingerprint) / [`source_nodes`](Tape::source_nodes)
/// always describe the original graph, not the optimized one.
pub fn compile_with_formats_and_options(
    g: &Cdfg,
    pcs_format: CsFmaFormat,
    fcs_format: CsFmaFormat,
    opts: CompileOptions,
) -> Result<Tape, CompileError> {
    compile_with_formats_and_options_profiled(
        g,
        pcs_format,
        fcs_format,
        opts,
        &mut Profiler::disabled(),
    )
}

/// [`compile_with_formats_and_options`] with stage spans and counters
/// recorded into `prof` (see [`compile_with_options_profiled`]).
pub fn compile_with_formats_and_options_profiled(
    g: &Cdfg,
    pcs_format: CsFmaFormat,
    fcs_format: CsFmaFormat,
    opts: CompileOptions,
    prof: &mut Profiler,
) -> Result<Tape, CompileError> {
    let compile_tok = prof.enter("compile");
    let gate_tok = prof.enter("gate");
    let mut diags = errors_only(match g.validate_diagnostics() {
        Ok(()) => Vec::new(),
        Err(d) => d,
    });
    if diags.is_empty() {
        // the dataflow pass needs well-formed edges; only run it (and
        // everything below) once the structural rules hold
        diags.extend(errors_only(lint_dataflow(g, &OpTiming::default())));
        let mut kinds: Vec<FmaKind> = Vec::new();
        for n in g.nodes() {
            if let Op::Fma { kind, .. } | Op::IeeeToCs(kind) | Op::CsToIeee(kind) = &n.op {
                if !kinds.contains(kind) {
                    kinds.push(*kind);
                }
            }
        }
        for kind in kinds {
            let fmt = match kind {
                FmaKind::Pcs => &pcs_format,
                FmaKind::Fcs => &fcs_format,
            };
            diags.extend(errors_only(check_format(fmt)));
        }
    }
    prof.exit(gate_tok);
    if !diags.is_empty() {
        prof.exit(compile_tok);
        return Err(CompileError { diagnostics: diags });
    }
    let tape = build_tape(g, pcs_format, fcs_format, opts, prof);
    prof.exit(compile_tok);
    Ok(tape)
}

/// Optimize (optionally) and lower a gated graph. The tape identity
/// (fingerprint, source node count) is pinned to the caller's graph so
/// cache bookkeeping and reports stay in source terms.
fn build_tape(
    g: &Cdfg,
    pcs_format: CsFmaFormat,
    fcs_format: CsFmaFormat,
    opts: CompileOptions,
    prof: &mut Profiler,
) -> Tape {
    let (mut tape, build_us) = csfma_obs::time_us(|| {
        let mut stats = OptStats {
            nodes_before: g.len(),
            nodes_after: g.len(),
            ..Default::default()
        };
        let optimized;
        let mut origin: Option<Vec<u32>> = None;
        let lowered_from = if opts.optimize {
            let opt_tok = prof.enter("optimize");
            let (og, s, o) = optimize_graph(g);
            prof.exit(opt_tok);
            stats = s;
            origin = Some(o);
            optimized = og;
            &optimized
        } else {
            g
        };
        let lower_tok = prof.enter("lower");
        let mut tape = lower(lowered_from, pcs_format, fcs_format);
        if let Some(origin) = &origin {
            // re-express per-instruction provenance in source-graph node ids
            for n in &mut tape.instr_nodes {
                *n = origin[*n as usize];
            }
        }
        if opts.optimize {
            stats.dead_slots_removed =
                eliminate_dead_slots(&mut tape.instrs, &mut tape.instr_nodes);
        }
        prof.exit(lower_tok);
        // `lower` recorded the allocator's slot reuses on its fresh
        // OptStats; carry them over the optimizer-stats overwrite
        stats.slots_reclaimed = tape.opt.slots_reclaimed;
        tape.opt = stats;
        tape
    });
    tape.opt.optimize_us = build_us;
    tape.fingerprint = graph_fingerprint(g);
    tape.source_nodes = g.len();
    // debug-build compile gate: the translation validator replays the
    // tape symbolically against the caller's graph (T* rules) — a
    // miscompile panics here instead of corrupting batch results
    let ((), verify_us) = csfma_obs::time_us(|| {
        crate::lint::debug_assert_tape_clean(&tape, g, "post-lowering tape");
    });
    prof.set_counter(
        "tape_verify_us",
        if cfg!(debug_assertions) {
            verify_us
        } else {
            0.0
        },
    );
    prof.set_counter("slots_reclaimed", tape.opt.slots_reclaimed as f64);
    prof.set_counter("opt_nodes_before", tape.opt.nodes_before as f64);
    prof.set_counter("opt_nodes_after", tape.opt.nodes_after as f64);
    prof.set_counter("opt_consts_folded", tape.opt.consts_folded as f64);
    prof.set_counter("opt_cse_merged", tape.opt.cse_merged as f64);
    prof.set_counter("opt_dead_removed", tape.opt.dead_removed as f64);
    prof.set_counter("opt_dead_slots_removed", tape.opt.dead_slots_removed as f64);
    prof.set_counter("tape_instrs", tape.instrs.len() as f64);
    tape
}

/// Backward-liveness sweep over the lowered tape: drop every instruction
/// whose destination slot is never read before its next overwrite (or at
/// all) and that feeds no `Store`. This is the tape-level counterpart of
/// dead-node elimination — it catches the `LoadInput`s the graph pass
/// deliberately keeps (unused `Input` nodes survive so the positional
/// row layout is stable, but nothing forces the tape to *execute* them).
fn eliminate_dead_slots(instrs: &mut Vec<Instr>, nodes: &mut Vec<u32>) -> usize {
    use std::collections::HashSet;
    let mut live_f: HashSet<u32> = HashSet::new();
    let mut live_cs: HashSet<u32> = HashSet::new();
    let before = instrs.len();
    debug_assert_eq!(nodes.len(), before, "provenance table out of sync");
    let mut kept: Vec<(Instr, u32)> = Vec::with_capacity(before);
    for (ins, node) in instrs.drain(..).zip(nodes.drain(..)).rev() {
        // a definition kills its slot's liveness; if the slot was not
        // live, nothing downstream reads this value and the instruction
        // (side-effect free by construction) can go
        let live = match ins {
            Instr::Store { .. } => true,
            Instr::Fma { dst, .. } | Instr::IeeeToCs { dst, .. } => live_cs.remove(&dst),
            Instr::LoadInput { dst, .. }
            | Instr::LoadConst { dst, .. }
            | Instr::Add { dst, .. }
            | Instr::Sub { dst, .. }
            | Instr::Mul { dst, .. }
            | Instr::Div { dst, .. }
            | Instr::Neg { dst, .. }
            | Instr::CsToIeee { dst, .. } => live_f.remove(&dst),
        };
        if !live {
            continue;
        }
        match ins {
            Instr::LoadInput { .. } | Instr::LoadConst { .. } => {}
            Instr::Add { a, b, .. }
            | Instr::Sub { a, b, .. }
            | Instr::Mul { a, b, .. }
            | Instr::Div { a, b, .. } => {
                live_f.insert(a);
                live_f.insert(b);
            }
            Instr::Neg { a, .. } => {
                live_f.insert(a);
            }
            Instr::Fma { acc, b, mulc, .. } => {
                live_cs.insert(acc);
                live_cs.insert(mulc);
                live_f.insert(b);
            }
            Instr::IeeeToCs { src, .. } | Instr::Store { src, .. } => {
                live_f.insert(src);
            }
            Instr::CsToIeee { src, .. } => {
                live_cs.insert(src);
            }
        }
        kept.push((ins, node));
    }
    kept.reverse();
    let (kept_instrs, kept_nodes): (Vec<_>, Vec<_>) = kept.into_iter().unzip();
    *instrs = kept_instrs;
    *nodes = kept_nodes;
    before - instrs.len()
}

/// [`compile`], additionally gating on the `S*` schedule-hazard rules
/// for a concrete schedule and resource allocation. Use this when the
/// tape stands in for hardware that will run `s` — a premature start or
/// resource overflow there is a miscompilation here.
pub fn compile_scheduled(
    g: &Cdfg,
    t: &OpTiming,
    s: &Schedule,
    limits: &ResourceLimits,
) -> Result<Tape, CompileError> {
    let tape = compile(g)?;
    let diags = errors_only(lint_schedule(g, t, s, limits));
    if !diags.is_empty() {
        return Err(CompileError { diagnostics: diags });
    }
    Ok(tape)
}

/// Resolve `Output` pass-throughs: the value of an `Output` node is its
/// argument's value.
fn resolve(g: &Cdfg, mut id: usize) -> usize {
    while let Op::Output(_) = &g.nodes()[id].op {
        id = g.nodes()[id].args[0];
    }
    id
}

/// Lower a validated graph. Register allocation is linear-scan over the
/// topological order: a slot is freed at its value's last read and
/// immediately reusable, so `n_*_regs` is the peak number of
/// simultaneously-live values per bank, not the node count.
fn lower(g: &Cdfg, pcs_format: CsFmaFormat, fcs_format: CsFmaFormat) -> Tape {
    let nodes = g.nodes();
    // last position reading each (resolved) value
    let mut last_use = vec![0usize; nodes.len()];
    for (id, n) in nodes.iter().enumerate() {
        for &a in &n.args {
            last_use[resolve(g, a)] = id;
        }
    }

    let mut inputs: Vec<String> = Vec::new();
    let mut input_index: HashMap<&str, u32> = HashMap::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut consts: Vec<f64> = Vec::new();

    let mut free_f64: Vec<u32> = Vec::new();
    let mut free_cs: Vec<u32> = Vec::new();
    let mut n_f64_regs = 0usize;
    let mut n_cs_regs = 0usize;
    let mut slots_reclaimed = 0usize;
    // register of each non-Output node (banks overlap in numbering)
    let mut reg = vec![u32::MAX; nodes.len()];
    let mut instrs = Vec::with_capacity(nodes.len());
    let mut instr_nodes: Vec<u32> = Vec::with_capacity(nodes.len());

    for (id, n) in nodes.iter().enumerate() {
        let arg_reg = |k: usize| reg[resolve(g, n.args[k])];
        if let Op::Output(name) = &n.op {
            outputs.push(name.clone());
            instrs.push(Instr::Store {
                output: (outputs.len() - 1) as u32,
                src: arg_reg(0),
            });
            instr_nodes.push(id as u32);
            continue;
        }
        let args_regs: Vec<u32> = (0..n.args.len()).map(arg_reg).collect();
        // free dead argument slots before allocating the destination —
        // an op may legally write the slot one of its sources held
        for &a in &n.args {
            let a = resolve(g, a);
            if last_use[a] == id && reg[a] != u32::MAX {
                match nodes[a].op.domain() {
                    crate::cdfg::Domain::Ieee => free_f64.push(reg[a]),
                    crate::cdfg::Domain::Cs => free_cs.push(reg[a]),
                }
                reg[a] = u32::MAX; // freed exactly once even with two reads
            }
        }
        let dst = match n.op.domain() {
            crate::cdfg::Domain::Ieee => match free_f64.pop() {
                Some(r) => {
                    slots_reclaimed += 1;
                    r
                }
                None => {
                    n_f64_regs += 1;
                    (n_f64_regs - 1) as u32
                }
            },
            crate::cdfg::Domain::Cs => match free_cs.pop() {
                Some(r) => {
                    slots_reclaimed += 1;
                    r
                }
                None => {
                    n_cs_regs += 1;
                    (n_cs_regs - 1) as u32
                }
            },
        };
        reg[id] = dst;
        let a = |k: usize| args_regs[k];
        instrs.push(match &n.op {
            Op::Input(name) => {
                let input = *input_index.entry(name.as_str()).or_insert_with(|| {
                    inputs.push(name.clone());
                    (inputs.len() - 1) as u32
                });
                Instr::LoadInput { dst, input }
            }
            Op::Const(v) => {
                consts.push(*v);
                Instr::LoadConst {
                    dst,
                    idx: (consts.len() - 1) as u32,
                }
            }
            Op::Add => Instr::Add {
                dst,
                a: a(0),
                b: a(1),
            },
            Op::Sub => Instr::Sub {
                dst,
                a: a(0),
                b: a(1),
            },
            Op::Mul => Instr::Mul {
                dst,
                a: a(0),
                b: a(1),
            },
            Op::Div => Instr::Div {
                dst,
                a: a(0),
                b: a(1),
            },
            Op::Neg => Instr::Neg { dst, a: a(0) },
            Op::Fma { kind, negate_b } => Instr::Fma {
                kind: *kind,
                negate_b: *negate_b,
                dst,
                acc: a(0),
                b: a(1),
                mulc: a(2),
            },
            Op::IeeeToCs(kind) => Instr::IeeeToCs {
                kind: *kind,
                dst,
                src: a(0),
            },
            Op::CsToIeee(_) => Instr::CsToIeee { dst, src: a(0) },
            Op::Output(_) => unreachable!("handled above"),
        });
        instr_nodes.push(id as u32);
    }

    let consts_canonical = consts.iter().map(|&c| sfb::canonicalize(c)).collect();
    let plane_eligible = instrs
        .iter()
        .map(|i| matches!(i, Instr::Fma { .. }))
        .collect();
    Tape {
        instrs,
        inputs,
        outputs,
        consts,
        consts_canonical,
        n_f64_regs,
        n_cs_regs,
        pcs_format,
        fcs_format,
        fingerprint: graph_fingerprint(g),
        source_nodes: g.len(),
        opt: OptStats {
            slots_reclaimed,
            ..OptStats::default()
        },
        instr_nodes,
        promoted: Vec::new(),
        plane_eligible,
        jit: OnceLock::new(),
    }
}

impl Tape {
    /// The instruction stream, in execution order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Positional input names (first-read order); a batch row supplies
    /// one value per name, in this order.
    pub fn input_names(&self) -> &[String] {
        &self.inputs
    }

    /// Positional output names (graph order).
    pub fn output_names(&self) -> &[String] {
        &self.outputs
    }

    /// Values per input row.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Values per output row.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Peak live binary64 values (size of the `r` bank).
    pub fn num_f64_regs(&self) -> usize {
        self.n_f64_regs
    }

    /// Peak live carry-save values (size of the `c` bank).
    pub fn num_cs_regs(&self) -> usize {
        self.n_cs_regs
    }

    /// Node count of the source graph.
    pub fn source_nodes(&self) -> usize {
        self.source_nodes
    }

    /// The **source-graph** node instruction `i` was lowered from,
    /// mapped back through the optimizer's provenance map when the tape
    /// was optimized. `None` only for an out-of-range index. Quarantine
    /// diagnostics use this to name the offending node in source terms.
    pub fn source_node_of(&self, i: usize) -> Option<usize> {
        self.instr_nodes.get(i).map(|&n| n as usize)
    }

    /// What the post-gate optimizer did when this tape was compiled
    /// (all-zero counters for a tape compiled with `optimize: false`).
    pub fn opt_stats(&self) -> OptStats {
        self.opt
    }

    /// FNV-1a digest of the source graph's canonical encoding.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Install a per-instruction fast-path promotion mask (consulted by
    /// the batch executor per instruction). `mask[i]` may only be
    /// `true` for IEEE `Add`/`Sub`/`Mul`/`Div`/`Neg` instructions whose
    /// result range provably keeps the soft-float guard from firing;
    /// callers derive it from `lint::lint_ranges` facts mapped through
    /// [`Tape::source_node_of`].
    ///
    /// # Panics
    /// If `mask.len() != self.instrs().len()`.
    pub fn set_promoted(&mut self, mask: Vec<bool>) {
        assert_eq!(
            mask.len(),
            self.instrs.len(),
            "promotion mask arity mismatch"
        );
        self.promoted = mask;
        // the JIT module's guard set mirrors the promotion mask, so any
        // cached module is stale now — rebuild on next use
        self.jit = OnceLock::new();
    }

    /// The native module backing [`TapeBackend::Jit`], built on first
    /// use (bit-accurate semantics). `None` when the tape cannot be
    /// lowered ([`crate::jit::jit_refusal`]), the platform cannot run
    /// emitted code, or `CSFMA_JIT=off` — the backend then evaluates
    /// every row on the bit-accurate interpreter.
    pub fn jit_module(&self) -> Option<&Arc<crate::jit::JitModule>> {
        self.jit
            .get_or_init(|| {
                let (m, us) = csfma_obs::time_us(|| {
                    crate::jit::compile_module(self, crate::jit::JitSemantics::Bit)
                });
                profile::count_jit_compile_us(us as u64);
                m.map(Arc::new)
            })
            .as_ref()
    }

    /// Number of instructions currently promoted to the raw host fast
    /// path (0 for a tape with no mask installed).
    pub fn promoted_count(&self) -> usize {
        self.promoted.iter().filter(|&&p| p).count()
    }

    /// Number of fused instructions eligible for the bit-plane chunk
    /// kernel (see DESIGN.md §13) — the lowering marks every `Fma`; the
    /// batch executor additionally requires a full chunk.
    pub fn plane_eligible_count(&self) -> usize {
        self.plane_eligible.iter().filter(|&&p| p).count()
    }

    /// A fresh register file sized for this tape. Reuse it across rows;
    /// [`Tape::eval_batch`] keeps one per worker.
    pub fn scratch(&self) -> TapeScratch {
        TapeScratch {
            f: vec![0.0; self.n_f64_regs],
            cs: vec![CsOperand::zero(self.pcs_format, false); self.n_cs_regs],
            cs_f: vec![0.0; self.n_cs_regs],
            pcs: CsFmaUnit::new(self.pcs_format),
            fcs: CsFmaUnit::new(self.fcs_format),
            fma: FmaScratch::default(),
        }
    }

    /// A structure-of-arrays register file for this tape, recycled from
    /// the process-wide scratch pool when one is available. Sizing the
    /// banks with `resize` keeps a recycled scratch's capacity (and its
    /// `FmaScratch`/`PlaneScratch` working buffers) across jobs and
    /// across tapes; contents are left dirty — see
    /// [`CHUNK_SCRATCH_POOL`] for why that is sound.
    pub(crate) fn chunk_scratch(&self) -> PooledChunkScratch {
        let recycled = CHUNK_SCRATCH_POOL
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop();
        let mut s = recycled.unwrap_or_else(|| ChunkScratch {
            f: Vec::new(),
            cs: Vec::new(),
            cs_f: Vec::new(),
            pcs: CsFmaUnit::new(self.pcs_format),
            fcs: CsFmaUnit::new(self.fcs_format),
            fma: FmaScratch::default(),
            plane: PlaneScratch::default(),
            b_lane: Vec::new(),
        });
        s.f.resize(self.n_f64_regs * CHUNK_ROWS, 0.0);
        s.cs_f.resize(self.n_cs_regs * CHUNK_ROWS, 0.0);
        s.cs.resize(
            self.n_cs_regs * CHUNK_ROWS,
            CsOperand::zero(self.pcs_format, false),
        );
        s.pcs = CsFmaUnit::new(self.pcs_format);
        s.fcs = CsFmaUnit::new(self.fcs_format);
        PooledChunkScratch(Some(s))
    }

    /// Evaluate one input row (`row.len() == num_inputs()`) into `out`
    /// (`out.len() == num_outputs()`).
    pub fn eval_row(
        &self,
        backend: TapeBackend,
        row: &[f64],
        out: &mut [f64],
        scratch: &mut TapeScratch,
    ) {
        assert_eq!(row.len(), self.inputs.len(), "row arity mismatch");
        assert_eq!(out.len(), self.outputs.len(), "output arity mismatch");
        match backend {
            TapeBackend::F64 => self.eval_row_f64(row, out, scratch),
            // row-granular jit evaluation buys nothing (the native call
            // and the per-row interpreter cost the same dispatch); the
            // bit path IS the jit backend's semantics
            TapeBackend::BitAccurate | TapeBackend::Jit => self.eval_row_bit(row, out, scratch),
            TapeBackend::Oracle => self.eval_row_oracle(row, out, scratch),
        }
    }

    fn eval_row_f64(&self, row: &[f64], out: &mut [f64], s: &mut TapeScratch) {
        let f = &mut s.f;
        let cs_f = &mut s.cs_f;
        for ins in &self.instrs {
            match *ins {
                Instr::LoadInput { dst, input } => f[dst as usize] = row[input as usize],
                Instr::LoadConst { dst, idx } => f[dst as usize] = self.consts[idx as usize],
                Instr::Add { dst, a, b } => f[dst as usize] = f[a as usize] + f[b as usize],
                Instr::Sub { dst, a, b } => f[dst as usize] = f[a as usize] - f[b as usize],
                Instr::Mul { dst, a, b } => f[dst as usize] = f[a as usize] * f[b as usize],
                Instr::Div { dst, a, b } => f[dst as usize] = f[a as usize] / f[b as usize],
                Instr::Neg { dst, a } => f[dst as usize] = -f[a as usize],
                Instr::Fma {
                    negate_b,
                    dst,
                    acc,
                    b,
                    mulc,
                    ..
                } => {
                    let bv = if negate_b {
                        -f[b as usize]
                    } else {
                        f[b as usize]
                    };
                    cs_f[dst as usize] = bv.mul_add(cs_f[mulc as usize], cs_f[acc as usize]);
                }
                Instr::IeeeToCs { dst, src, .. } => cs_f[dst as usize] = f[src as usize],
                Instr::CsToIeee { dst, src } => f[dst as usize] = cs_f[src as usize],
                Instr::Store { output, src } => out[output as usize] = f[src as usize],
            }
        }
    }

    fn eval_row_bit(&self, row: &[f64], out: &mut [f64], s: &mut TapeScratch) {
        let f = &mut s.f;
        let cs = &mut s.cs;
        let promoted = |i: usize| self.promoted.get(i).copied().unwrap_or(false);
        for (i, ins) in self.instrs.iter().enumerate() {
            match *ins {
                Instr::LoadInput { dst, input } => {
                    f[dst as usize] = sfb::canonicalize(row[input as usize])
                }
                Instr::LoadConst { dst, idx } => {
                    f[dst as usize] = self.consts_canonical[idx as usize]
                }
                Instr::Add { dst, a, b } => {
                    f[dst as usize] = if promoted(i) {
                        f[a as usize] + f[b as usize]
                    } else {
                        sfb::hosted_add(f[a as usize], f[b as usize])
                    }
                }
                Instr::Sub { dst, a, b } => {
                    f[dst as usize] = if promoted(i) {
                        f[a as usize] - f[b as usize]
                    } else {
                        sfb::hosted_sub(f[a as usize], f[b as usize])
                    }
                }
                Instr::Mul { dst, a, b } => {
                    f[dst as usize] = if promoted(i) {
                        f[a as usize] * f[b as usize]
                    } else {
                        sfb::hosted_mul(f[a as usize], f[b as usize])
                    }
                }
                Instr::Div { dst, a, b } => {
                    f[dst as usize] = if promoted(i) {
                        f[a as usize] / f[b as usize]
                    } else {
                        sfb::hosted_div(f[a as usize], f[b as usize])
                    }
                }
                Instr::Neg { dst, a } => {
                    f[dst as usize] = if promoted(i) {
                        -f[a as usize]
                    } else {
                        sfb::hosted_neg(f[a as usize])
                    }
                }
                Instr::Fma {
                    kind,
                    negate_b,
                    dst,
                    acc,
                    b,
                    mulc,
                } => {
                    let unit = match kind {
                        FmaKind::Pcs => &s.pcs,
                        FmaKind::Fcs => &s.fcs,
                    };
                    let mut bv = SoftFloat::from_f64(F, f[b as usize]);
                    if negate_b {
                        bv = bv.neg();
                    }
                    let r = unit.fma_with(&cs[acc as usize], &bv, &cs[mulc as usize], &mut s.fma);
                    cs[dst as usize] = r;
                }
                Instr::IeeeToCs { kind, dst, src } => {
                    let fmt = match kind {
                        FmaKind::Pcs => self.pcs_format,
                        FmaKind::Fcs => self.fcs_format,
                    };
                    cs[dst as usize] = CsOperand::from_f64(f[src as usize], fmt);
                }
                Instr::CsToIeee { dst, src } => {
                    f[dst as usize] = cs[src as usize].to_ieee(F, Round::NearestEven).to_f64();
                }
                Instr::Store { output, src } => out[output as usize] = f[src as usize],
            }
        }
    }

    /// Oracle row evaluation: every IEEE operator runs the full
    /// soft-float stack (no hosted fast paths, no shared [`FmaScratch`]),
    /// fused nodes call the allocating [`CsFmaUnit::fma`] entry point —
    /// the slowest, most literal replay of the model, structurally
    /// independent of the scratch-based executors it backstops.
    fn eval_row_oracle(&self, row: &[f64], out: &mut [f64], s: &mut TapeScratch) {
        let sf = |v: f64| SoftFloat::from_f64(F, v);
        let f = &mut s.f;
        let cs = &mut s.cs;
        for ins in &self.instrs {
            match *ins {
                Instr::LoadInput { dst, input } => {
                    f[dst as usize] = sf(row[input as usize]).to_f64()
                }
                Instr::LoadConst { dst, idx } => {
                    f[dst as usize] = sf(self.consts[idx as usize]).to_f64()
                }
                Instr::Add { dst, a, b } => {
                    f[dst as usize] = sf(f[a as usize]).add(&sf(f[b as usize])).to_f64()
                }
                Instr::Sub { dst, a, b } => {
                    f[dst as usize] = sf(f[a as usize]).sub(&sf(f[b as usize])).to_f64()
                }
                Instr::Mul { dst, a, b } => {
                    f[dst as usize] = sf(f[a as usize]).mul(&sf(f[b as usize])).to_f64()
                }
                Instr::Div { dst, a, b } => {
                    f[dst as usize] = sf(f[a as usize]).div(&sf(f[b as usize])).to_f64()
                }
                Instr::Neg { dst, a } => f[dst as usize] = sf(f[a as usize]).neg().to_f64(),
                Instr::Fma {
                    kind,
                    negate_b,
                    dst,
                    acc,
                    b,
                    mulc,
                } => {
                    let unit = match kind {
                        FmaKind::Pcs => &s.pcs,
                        FmaKind::Fcs => &s.fcs,
                    };
                    let mut bv = sf(f[b as usize]);
                    if negate_b {
                        bv = bv.neg();
                    }
                    let r = unit.fma(&cs[acc as usize], &bv, &cs[mulc as usize]);
                    cs[dst as usize] = r;
                }
                Instr::IeeeToCs { kind, dst, src } => {
                    let fmt = match kind {
                        FmaKind::Pcs => self.pcs_format,
                        FmaKind::Fcs => self.fcs_format,
                    };
                    cs[dst as usize] = CsOperand::from_ieee(&sf(f[src as usize]), fmt);
                }
                Instr::CsToIeee { dst, src } => {
                    f[dst as usize] = cs[src as usize].to_ieee(F, Round::NearestEven).to_f64();
                }
                Instr::Store { output, src } => out[output as usize] = f[src as usize],
            }
        }
    }

    /// Evaluate a batch of rows. `rows` is row-major,
    /// `rows.len() = n · num_inputs()`; the result is row-major,
    /// `n · num_outputs()` long. Up to `threads` workers process
    /// fixed-size row chunks; the output is bitwise identical for any
    /// `threads`, including 1 (see `csfma_core::batch`).
    ///
    /// # Panics
    /// If the tape has no inputs (the row count would be ambiguous —
    /// evaluate constant graphs with [`Tape::eval_row`]) or `rows.len()`
    /// is not a multiple of `num_inputs()`.
    pub fn eval_batch(&self, backend: TapeBackend, rows: &[f64], threads: usize) -> Vec<f64> {
        self.eval_batch_with_stats(backend, rows, threads).0
    }

    /// [`Tape::eval_batch`] plus the scheduler's
    /// [`SchedStats`](csfma_core::SchedStats) for the run (worker count,
    /// grain, claim/steal traffic). The output vector is the same —
    /// stats only observe.
    pub fn eval_batch_with_stats(
        &self,
        backend: TapeBackend,
        rows: &[f64],
        threads: usize,
    ) -> (Vec<f64>, csfma_core::SchedStats) {
        let ni = self.inputs.len();
        assert!(ni > 0, "eval_batch on a tape with no inputs");
        assert_eq!(rows.len() % ni, 0, "rows not a multiple of num_inputs");
        let n = rows.len() / ni;
        let no = self.outputs.len();
        let mut out = vec![0.0f64; n * no];
        if no == 0 {
            return (out, csfma_core::SchedStats::default());
        }
        let stats = par_chunks_indexed(
            &mut out,
            CHUNK_ROWS * no,
            threads,
            || self.chunk_scratch(),
            |scratch, chunk_idx, chunk| {
                let len = chunk.len() / no;
                self.eval_chunk(backend, rows, chunk_idx * CHUNK_ROWS, len, chunk, scratch);
            },
        );
        (out, stats)
    }

    /// Evaluate one scheduling chunk (`len` rows starting at row `base`)
    /// into `chunk` — the shared per-chunk dispatch used by
    /// [`Tape::eval_batch`] and [`crate::many::eval_many`].
    pub(crate) fn eval_chunk(
        &self,
        backend: TapeBackend,
        rows: &[f64],
        base: usize,
        len: usize,
        chunk: &mut [f64],
        scratch: &mut ChunkScratch,
    ) {
        profile::record_chunk_occupancy(len, CHUNK_ROWS);
        match backend {
            TapeBackend::F64 => self.eval_chunk_f64(rows, base, len, chunk, scratch),
            TapeBackend::BitAccurate => self.eval_chunk_bit(rows, base, len, chunk, scratch),
            TapeBackend::Oracle => self.eval_chunk_oracle(rows, base, len, chunk, scratch),
            TapeBackend::Jit => self.eval_chunk_jit(rows, base, len, chunk, scratch),
        }
    }

    /// Chunk evaluation on the native JIT module, bit-identical to
    /// [`Tape::eval_chunk`] with [`TapeBackend::BitAccurate`]: each row
    /// runs the emitted function; a row whose bailout guard fires is
    /// re-evaluated alone on the bit-accurate interpreter (sound
    /// because chunk lanes are independent — a one-row chunk computes
    /// exactly what that lane of any chunk computes). With no module at
    /// all the whole chunk keeps the interpreter and every row counts
    /// as a bailout.
    fn eval_chunk_jit(
        &self,
        rows: &[f64],
        base: usize,
        len: usize,
        out: &mut [f64],
        s: &mut ChunkScratch,
    ) {
        let Some(module) = self.jit_module() else {
            profile::count_jit_chunk(len as u64, len as u64);
            self.eval_chunk_bit(rows, base, len, out, s);
            return;
        };
        let module = Arc::clone(module);
        let ni = self.inputs.len();
        let no = self.outputs.len();
        let mut bailouts = 0u64;
        for k in 0..len {
            let row = &rows[(base + k) * ni..(base + k + 1) * ni];
            let dst = &mut out[k * no..(k + 1) * no];
            if !module.run_row(row, dst) {
                bailouts += 1;
                self.eval_chunk_bit(rows, base + k, 1, dst, s);
            }
        }
        profile::count_jit_chunk(len as u64, bailouts);
    }

    /// [`Tape::eval_batch`] wrapped in an `eval` stage span, with
    /// throughput, chunk, hosted-fast-path and per-FMA-architecture
    /// counters recorded into `prof`. The output vector is byte-identical
    /// to the unprofiled call — instrumentation only observes.
    ///
    /// The op counters are deltas of process-wide tallies taken around
    /// this call; when other threads evaluate batches concurrently their
    /// ops land in whichever profiler is live, so treat them as
    /// per-process traffic attribution, not an exact per-call census.
    pub fn eval_batch_profiled(
        &self,
        backend: TapeBackend,
        rows: &[f64],
        threads: usize,
        prof: &mut Profiler,
    ) -> Vec<f64> {
        let hosted0 = profile::hosted_ops();
        let fallback0 = sfb::softfloat_fallbacks();
        let units0 = csfma_core::unit_op_counts();
        let plane0 = csfma_core::plane_counts();
        let occ0 = profile::chunk_occupancy();
        let jit_rows0 = profile::jit_rows();
        let jit_bail0 = profile::jit_bailouts();
        let jit_us0 = profile::jit_compile_us();

        if backend == TapeBackend::Jit {
            // force the lazy module build here so its cost lands in a
            // `codegen` span instead of polluting the eval timing
            let codegen_tok = prof.enter("codegen");
            let native = self.jit_module().map_or(0, |m| m.native_instr_count());
            prof.exit(codegen_tok);
            prof.set_counter("jit_native_instrs", native as f64);
        }

        let eval_tok = prof.enter("eval");
        let ((out, sched), wall_us) =
            csfma_obs::time_us(|| self.eval_batch_with_stats(backend, rows, threads));
        prof.exit(eval_tok);

        let n = rows.len() / self.inputs.len();
        prof.set_counter("rows", n as f64);
        prof.set_counter("threads", threads as f64);
        prof.set_counter("sched_workers", sched.workers as f64);
        prof.set_counter(
            "sched_grain_rows",
            (sched.grain as usize * CHUNK_ROWS) as f64,
        );
        prof.set_counter("sched_claims", sched.claims as f64);
        prof.set_counter("sched_steals", sched.steals as f64);
        prof.set_counter("sched_steal_misses", sched.steal_misses as f64);
        if wall_us > 0.0 {
            prof.set_counter("rows_per_sec", n as f64 / (wall_us * 1e-6));
        }
        prof.set_counter("chunks", n.div_ceil(CHUNK_ROWS) as f64);
        let occ = profile::chunk_occupancy();
        let (mut full, mut partial) = (0u64, 0u64);
        for (i, (a, b)) in occ0.iter().zip(occ.iter()).enumerate() {
            let d = b - a;
            if i == 9 {
                full += d;
            } else {
                partial += d;
            }
        }
        prof.set_counter("chunks_full", full as f64);
        prof.set_counter("chunks_partial", partial as f64);

        let hosted = profile::hosted_ops() - hosted0;
        let fallbacks = sfb::softfloat_fallbacks() - fallback0;
        prof.set_counter("hosted_ops", hosted as f64);
        prof.set_counter("softfloat_fallbacks", fallbacks as f64);
        if hosted > 0 {
            prof.set_counter(
                "hosted_hit_rate",
                1.0 - fallbacks.min(hosted) as f64 / hosted as f64,
            );
        }
        let units = csfma_core::unit_op_counts();
        prof.set_counter("fma_ops_classic", (units.classic - units0.classic) as f64);
        prof.set_counter("fma_ops_pcs", (units.pcs - units0.pcs) as f64);
        prof.set_counter("fma_ops_fcs", (units.fcs - units0.fcs) as f64);
        let plane = csfma_core::plane_counts();
        prof.set_counter(
            "plane_lanes",
            (plane.plane_lanes - plane0.plane_lanes) as f64,
        );
        prof.set_counter(
            "plane_exception_lanes",
            (plane.exception_lanes - plane0.exception_lanes) as f64,
        );
        prof.set_counter(
            "plane_fallback_lanes",
            (plane.fallback_lanes - plane0.fallback_lanes) as f64,
        );
        prof.set_counter(
            "plane_transpose_us",
            (plane.transpose_ns - plane0.transpose_ns) as f64 / 1000.0,
        );
        if backend == TapeBackend::Jit {
            prof.set_counter("jit_rows", (profile::jit_rows() - jit_rows0) as f64);
            prof.set_counter("jit_bailouts", (profile::jit_bailouts() - jit_bail0) as f64);
            prof.set_counter(
                "jit_compile_us",
                (profile::jit_compile_us() - jit_us0) as f64,
            );
        }
        out
    }

    /// Column-wise chunk evaluation, host-double semantics. One pass over
    /// the instruction stream; each instruction runs a branch-free loop
    /// over the chunk's `len` lanes of its operand planes, so the
    /// per-instruction dispatch cost is paid once per chunk instead of
    /// once per row. Lane `k` computes exactly what [`Tape::eval_row`]
    /// computes for row `base + k` — same operators, same order — so the
    /// results are bitwise identical to the row loop.
    fn eval_chunk_f64(
        &self,
        rows: &[f64],
        base: usize,
        len: usize,
        out: &mut [f64],
        s: &mut ChunkScratch,
    ) {
        let ni = self.inputs.len();
        let no = self.outputs.len();
        const W: usize = CHUNK_ROWS;
        let p = |r: u32| r as usize * W;
        for ins in &self.instrs {
            match *ins {
                Instr::LoadInput { dst, input } => {
                    let d = p(dst);
                    for k in 0..len {
                        s.f[d + k] = rows[(base + k) * ni + input as usize];
                    }
                }
                Instr::LoadConst { dst, idx } => {
                    let v = self.consts[idx as usize];
                    s.f[p(dst)..p(dst) + len].fill(v);
                }
                Instr::Add { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    for k in 0..len {
                        s.f[d + k] = s.f[x + k] + s.f[y + k];
                    }
                }
                Instr::Sub { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    for k in 0..len {
                        s.f[d + k] = s.f[x + k] - s.f[y + k];
                    }
                }
                Instr::Mul { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    for k in 0..len {
                        s.f[d + k] = s.f[x + k] * s.f[y + k];
                    }
                }
                Instr::Div { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    for k in 0..len {
                        s.f[d + k] = s.f[x + k] / s.f[y + k];
                    }
                }
                Instr::Neg { dst, a } => {
                    let (d, x) = (p(dst), p(a));
                    for k in 0..len {
                        s.f[d + k] = -s.f[x + k];
                    }
                }
                Instr::Fma {
                    negate_b,
                    dst,
                    acc,
                    b,
                    mulc,
                    ..
                } => {
                    let (d, pa, pb, pm) = (p(dst), p(acc), p(b), p(mulc));
                    for k in 0..len {
                        let bv = if negate_b { -s.f[pb + k] } else { s.f[pb + k] };
                        s.cs_f[d + k] = bv.mul_add(s.cs_f[pm + k], s.cs_f[pa + k]);
                    }
                }
                Instr::IeeeToCs { dst, src, .. } => {
                    let (d, x) = (p(dst), p(src));
                    s.cs_f[d..d + len].copy_from_slice(&s.f[x..x + len]);
                }
                Instr::CsToIeee { dst, src } => {
                    let (d, x) = (p(dst), p(src));
                    s.f[d..d + len].copy_from_slice(&s.cs_f[x..x + len]);
                }
                Instr::Store { output, src } => {
                    let x = p(src);
                    for k in 0..len {
                        out[k * no + output as usize] = s.f[x + k];
                    }
                }
            }
        }
    }

    /// Column-wise chunk evaluation, bit-accurate semantics: IEEE nodes
    /// stream through the guarded host fast path of
    /// [`csfma_softfloat::batch`], fused nodes run the behavioral
    /// carry-save unit lane by lane with one shared [`FmaScratch`] — the
    /// compressor-tree row and layer buffers are reused across every lane
    /// of every FMA in the chunk instead of being reallocated per call.
    fn eval_chunk_bit(
        &self,
        rows: &[f64],
        base: usize,
        len: usize,
        out: &mut [f64],
        s: &mut ChunkScratch,
    ) {
        let ni = self.inputs.len();
        let no = self.outputs.len();
        const W: usize = CHUNK_ROWS;
        let p = |r: u32| r as usize * W;
        profile::count_hosted_chunk(&self.instrs, len);
        let promoted = |i: usize| self.promoted.get(i).copied().unwrap_or(false);
        for (i, ins) in self.instrs.iter().enumerate() {
            match *ins {
                Instr::LoadInput { dst, input } => {
                    let d = p(dst);
                    for k in 0..len {
                        s.f[d + k] = sfb::canonicalize(rows[(base + k) * ni + input as usize]);
                    }
                }
                Instr::LoadConst { dst, idx } => {
                    let v = self.consts_canonical[idx as usize];
                    s.f[p(dst)..p(dst) + len].fill(v);
                }
                Instr::Add { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    if promoted(i) {
                        for k in 0..len {
                            s.f[d + k] = s.f[x + k] + s.f[y + k];
                        }
                    } else {
                        for k in 0..len {
                            s.f[d + k] = sfb::hosted_add(s.f[x + k], s.f[y + k]);
                        }
                    }
                }
                Instr::Sub { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    if promoted(i) {
                        for k in 0..len {
                            s.f[d + k] = s.f[x + k] - s.f[y + k];
                        }
                    } else {
                        for k in 0..len {
                            s.f[d + k] = sfb::hosted_sub(s.f[x + k], s.f[y + k]);
                        }
                    }
                }
                Instr::Mul { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    if promoted(i) {
                        for k in 0..len {
                            s.f[d + k] = s.f[x + k] * s.f[y + k];
                        }
                    } else {
                        for k in 0..len {
                            s.f[d + k] = sfb::hosted_mul(s.f[x + k], s.f[y + k]);
                        }
                    }
                }
                Instr::Div { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    if promoted(i) {
                        for k in 0..len {
                            s.f[d + k] = s.f[x + k] / s.f[y + k];
                        }
                    } else {
                        for k in 0..len {
                            s.f[d + k] = sfb::hosted_div(s.f[x + k], s.f[y + k]);
                        }
                    }
                }
                Instr::Neg { dst, a } => {
                    let (d, x) = (p(dst), p(a));
                    if promoted(i) {
                        for k in 0..len {
                            s.f[d + k] = -s.f[x + k];
                        }
                    } else {
                        for k in 0..len {
                            s.f[d + k] = sfb::hosted_neg(s.f[x + k]);
                        }
                    }
                }
                Instr::Fma {
                    kind,
                    negate_b,
                    dst,
                    acc,
                    b,
                    mulc,
                } => {
                    let unit = match kind {
                        FmaKind::Pcs => &s.pcs,
                        FmaKind::Fcs => &s.fcs,
                    };
                    let (d, pa, pb, pm) = (p(dst), p(acc), p(b), p(mulc));
                    if len == W && self.plane_eligible.get(i).copied().unwrap_or(false) {
                        s.b_lane.clear();
                        for k in 0..len {
                            let mut bv = SoftFloat::from_f64(F, s.f[pb + k]);
                            if negate_b {
                                bv = bv.neg();
                            }
                            s.b_lane.push(bv);
                        }
                        csfma_core::plane_fma_chunk(
                            unit,
                            &mut s.cs,
                            pa,
                            pm,
                            d,
                            &s.b_lane,
                            len,
                            &mut s.plane,
                        );
                    } else {
                        csfma_core::count_plane_fallback(len);
                        for k in 0..len {
                            let mut bv = SoftFloat::from_f64(F, s.f[pb + k]);
                            if negate_b {
                                bv = bv.neg();
                            }
                            let r = unit.fma_with(&s.cs[pa + k], &bv, &s.cs[pm + k], &mut s.fma);
                            s.cs[d + k] = r;
                        }
                    }
                }
                Instr::IeeeToCs { kind, dst, src } => {
                    let fmt = match kind {
                        FmaKind::Pcs => self.pcs_format,
                        FmaKind::Fcs => self.fcs_format,
                    };
                    let (d, x) = (p(dst), p(src));
                    for k in 0..len {
                        s.cs[d + k] = CsOperand::from_f64(s.f[x + k], fmt);
                    }
                }
                Instr::CsToIeee { dst, src } => {
                    let (d, x) = (p(dst), p(src));
                    for k in 0..len {
                        s.f[d + k] = s.cs[x + k].to_ieee(F, Round::NearestEven).to_f64();
                    }
                }
                Instr::Store { output, src } => {
                    let x = p(src);
                    for k in 0..len {
                        out[k * no + output as usize] = s.f[x + k];
                    }
                }
            }
        }
    }

    /// Column-wise chunk evaluation with [`TapeBackend::Oracle`]
    /// semantics: lane `k` computes exactly what
    /// [`Tape::eval_row`]`(Oracle, …)` computes for row `base + k`.
    fn eval_chunk_oracle(
        &self,
        rows: &[f64],
        base: usize,
        len: usize,
        out: &mut [f64],
        s: &mut ChunkScratch,
    ) {
        let ni = self.inputs.len();
        let no = self.outputs.len();
        const W: usize = CHUNK_ROWS;
        let p = |r: u32| r as usize * W;
        let sf = |v: f64| SoftFloat::from_f64(F, v);
        for ins in &self.instrs {
            match *ins {
                Instr::LoadInput { dst, input } => {
                    let d = p(dst);
                    for k in 0..len {
                        s.f[d + k] = sf(rows[(base + k) * ni + input as usize]).to_f64();
                    }
                }
                Instr::LoadConst { dst, idx } => {
                    let v = sf(self.consts[idx as usize]).to_f64();
                    s.f[p(dst)..p(dst) + len].fill(v);
                }
                Instr::Add { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    for k in 0..len {
                        s.f[d + k] = sf(s.f[x + k]).add(&sf(s.f[y + k])).to_f64();
                    }
                }
                Instr::Sub { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    for k in 0..len {
                        s.f[d + k] = sf(s.f[x + k]).sub(&sf(s.f[y + k])).to_f64();
                    }
                }
                Instr::Mul { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    for k in 0..len {
                        s.f[d + k] = sf(s.f[x + k]).mul(&sf(s.f[y + k])).to_f64();
                    }
                }
                Instr::Div { dst, a, b } => {
                    let (d, x, y) = (p(dst), p(a), p(b));
                    for k in 0..len {
                        s.f[d + k] = sf(s.f[x + k]).div(&sf(s.f[y + k])).to_f64();
                    }
                }
                Instr::Neg { dst, a } => {
                    let (d, x) = (p(dst), p(a));
                    for k in 0..len {
                        s.f[d + k] = sf(s.f[x + k]).neg().to_f64();
                    }
                }
                Instr::Fma {
                    kind,
                    negate_b,
                    dst,
                    acc,
                    b,
                    mulc,
                } => {
                    let unit = match kind {
                        FmaKind::Pcs => &s.pcs,
                        FmaKind::Fcs => &s.fcs,
                    };
                    let (d, pa, pb, pm) = (p(dst), p(acc), p(b), p(mulc));
                    for k in 0..len {
                        let mut bv = sf(s.f[pb + k]);
                        if negate_b {
                            bv = bv.neg();
                        }
                        let r = unit.fma(&s.cs[pa + k], &bv, &s.cs[pm + k]);
                        s.cs[d + k] = r;
                    }
                }
                Instr::IeeeToCs { kind, dst, src } => {
                    let fmt = match kind {
                        FmaKind::Pcs => self.pcs_format,
                        FmaKind::Fcs => self.fcs_format,
                    };
                    let (d, x) = (p(dst), p(src));
                    for k in 0..len {
                        s.cs[d + k] = CsOperand::from_ieee(&sf(s.f[x + k]), fmt);
                    }
                }
                Instr::CsToIeee { dst, src } => {
                    let (d, x) = (p(dst), p(src));
                    for k in 0..len {
                        s.f[d + k] = s.cs[x + k].to_ieee(F, Round::NearestEven).to_f64();
                    }
                }
                Instr::Store { output, src } => {
                    let x = p(src);
                    for k in 0..len {
                        out[k * no + output as usize] = s.f[x + k];
                    }
                }
            }
        }
    }

    /// Convenience: evaluate a batch and pair each output row with the
    /// output names, like the scalar interpreters' `HashMap` result.
    pub fn output_map(&self, out_row: &[f64]) -> HashMap<String, f64> {
        self.outputs
            .iter()
            .cloned()
            .zip(out_row.iter().copied())
            .collect()
    }
}

/// Default retention bound of the process-wide tape cache; see
/// [`set_tape_cache_capacity`].
pub const DEFAULT_TAPE_CACHE_CAPACITY: usize = 256;

/// Counter snapshot of the process-wide tape cache. `hits`, `misses`
/// and `evictions` are process-wide atomics shared by every shard, so
/// the snapshot stays exact regardless of the shard count; `entries`
/// sums the shard occupancies under their locks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TapeCacheStats {
    /// Lookups served without compiling.
    pub hits: u64,
    /// Lookups that compiled (and inserted) a fresh tape.
    pub misses: u64,
    /// Entries dropped by the LRU bound since process start.
    pub evictions: u64,
    /// Tapes currently resident, summed over all shards.
    pub entries: usize,
    /// Current retention bound (total across shards).
    pub capacity: usize,
    /// Number of LRU shards ([`set_tape_cache_shards`]).
    pub shards: usize,
}

struct TapeCacheState {
    /// Key → (tape, last-touch tick). The tick orders recency; eviction
    /// removes the minimum.
    map: HashMap<Vec<u8>, (Arc<Tape>, u64)>,
    tick: u64,
    capacity: usize,
}

impl TapeCacheState {
    fn evict_to_capacity(&mut self) {
        while self.map.len() > self.capacity {
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&victim);
            CACHE_EVICTIONS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Hard ceiling on the shard count accepted by [`set_tape_cache_shards`].
pub const MAX_TAPE_CACHE_SHARDS: usize = 64;

static TAPE_CACHE: OnceLock<RwLock<Vec<Mutex<TapeCacheState>>>> = OnceLock::new();
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);
/// Total retention bound across all shards (the public `capacity`).
static CACHE_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_TAPE_CACHE_CAPACITY);

fn new_shard(capacity: usize) -> Mutex<TapeCacheState> {
    Mutex::new(TapeCacheState {
        map: HashMap::new(),
        tick: 0,
        capacity,
    })
}

fn shards() -> &'static RwLock<Vec<Mutex<TapeCacheState>>> {
    TAPE_CACHE.get_or_init(|| RwLock::new(vec![new_shard(DEFAULT_TAPE_CACHE_CAPACITY)]))
}

/// FNV-1a over the cache key selects the shard; a power-of-two shard
/// count makes the reduction a mask.
fn shard_index(key: &[u8], n: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // fold the high bits in so low-entropy keys still spread
    ((h ^ (h >> 32)) as usize) & (n - 1)
}

fn per_shard_capacity(total: usize, n: usize) -> usize {
    (total / n).max(1)
}

/// Run `f` on the shard owning `key`. The outer read lock only excludes
/// [`set_tape_cache_shards`]' reshard; concurrent lookups with different
/// keys proceed in parallel on distinct shard mutexes.
fn with_shard<R>(key: &[u8], f: impl FnOnce(&mut TapeCacheState) -> R) -> R {
    let guard = shards().read().unwrap_or_else(|e| e.into_inner());
    let idx = shard_index(key, guard.len());
    // the cache never holds partially-updated state across a panic,
    // so a poisoned lock is safe to re-enter
    let mut st = guard[idx].lock().unwrap_or_else(|e| e.into_inner());
    f(&mut st)
}

/// Run `f` on every shard in order (stats, capacity, clear).
fn for_each_shard(mut f: impl FnMut(&mut TapeCacheState)) {
    let guard = shards().read().unwrap_or_else(|e| e.into_inner());
    for shard in guard.iter() {
        let mut st = shard.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut st);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// [`compile`] through the process-wide tape cache, keyed by the graph's
/// full canonical encoding (collision-proof; the [`Tape::fingerprint`]
/// digest is informational). Two calls with structurally identical
/// graphs return the same `Arc` — the second call does no compilation
/// and no checking. The cache is bounded ([`set_tape_cache_capacity`],
/// default [`DEFAULT_TAPE_CACHE_CAPACITY`]) with least-recently-used
/// eviction.
pub fn compile_cached(g: &Cdfg) -> Result<Arc<Tape>, CompileError> {
    compile_cached_with(g, CompileOptions::default())
}

/// [`compile_cached`] with explicit [`CompileOptions`]. The cache key is
/// the canonical encoding extended with the option bits, so optimized
/// and unoptimized tapes of the same graph are distinct entries.
pub fn compile_cached_with(g: &Cdfg, opts: CompileOptions) -> Result<Arc<Tape>, CompileError> {
    compile_cached_with_profiled(g, opts, &mut Profiler::disabled())
}

/// [`compile_cached_with`] with stage spans and tape-cache counters
/// recorded into `prof`: a `cache_lookup` span for the keyed probe, then
/// (on a miss) the full `compile` span tree of
/// [`compile_with_options_profiled`]. The `tape_cache_*` counters are
/// the process-wide totals after this call.
pub fn compile_cached_with_profiled(
    g: &Cdfg,
    opts: CompileOptions,
    prof: &mut Profiler,
) -> Result<Arc<Tape>, CompileError> {
    let result = compile_cached_with_inner(g, opts, prof);
    let stats = tape_cache_stats();
    prof.set_counter("tape_cache_hits", stats.hits as f64);
    prof.set_counter("tape_cache_misses", stats.misses as f64);
    prof.set_counter("tape_cache_evictions", stats.evictions as f64);
    prof.set_counter("tape_cache_entries", stats.entries as f64);
    prof.set_counter("tape_cache_shards", stats.shards as f64);
    result
}

fn compile_cached_with_inner(
    g: &Cdfg,
    opts: CompileOptions,
    prof: &mut Profiler,
) -> Result<Arc<Tape>, CompileError> {
    let mut key = canonical_encoding(g);
    key.push(opts.optimize as u8);
    key.push(opts.codegen as u8);
    {
        let lookup_tok = prof.enter("cache_lookup");
        let cached = with_shard(&key, |st| {
            st.tick += 1;
            let tick = st.tick;
            st.map.get_mut(&key).map(|(t, stamp)| {
                *stamp = tick;
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                Arc::clone(t)
            })
        });
        prof.exit(lookup_tok);
        if let Some(shared) = cached {
            return Ok(shared);
        }
    }
    // compile outside the lock; a racing duplicate insert is harmless
    // (both tapes are identical) and the first one wins. The compiler
    // runs under `catch_unwind` so an internal bug surfaces as a
    // structured X001 error and the poisoned attempt is never cached.
    let compiled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compile_with_options_profiled(g, opts, prof)
    }));
    let mut tape = match compiled {
        Ok(result) => result?,
        Err(payload) => {
            return Err(CompileError {
                diagnostics: vec![Diagnostic::error(
                    Rule::CompilerPanic,
                    Span::Global,
                    format!(
                        "tape compiler panicked: {}",
                        panic_message(payload.as_ref())
                    ),
                )],
            })
        }
    };
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    // snapshot the counters onto the tape so BENCH reports can attribute
    // cache behavior to the compilation that observed it
    tape.opt.cache_hits = CACHE_HITS.load(Ordering::Relaxed);
    tape.opt.cache_misses = CACHE_MISSES.load(Ordering::Relaxed);
    tape.opt.cache_evictions = CACHE_EVICTIONS.load(Ordering::Relaxed);
    if opts.codegen {
        // build the native module eagerly so cached tapes are served
        // ready-to-run and the cost lands in a `codegen` span
        let codegen_tok = prof.enter("codegen");
        let _ = tape.jit_module();
        prof.exit(codegen_tok);
    }
    let tape = Arc::new(tape);
    let shared = with_shard(&key, |st| {
        st.tick += 1;
        let tick = st.tick;
        // the clone only runs on the miss path, where a full compile
        // already dwarfs it
        let shared = Arc::clone(&st.map.entry(key.clone()).or_insert((tape, tick)).0);
        st.evict_to_capacity();
        shared
    });
    Ok(shared)
}

/// Counters and occupancy of [`compile_cached`]'s tape cache since
/// process start. Exact at any shard count: the event counters are
/// process-wide atomics and `entries` sums shard occupancies.
pub fn tape_cache_stats() -> TapeCacheStats {
    let mut entries = 0usize;
    let mut n_shards = 0usize;
    for_each_shard(|st| {
        entries += st.map.len();
        n_shards += 1;
    });
    TapeCacheStats {
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
        evictions: CACHE_EVICTIONS.load(Ordering::Relaxed),
        entries,
        capacity: CACHE_CAPACITY.load(Ordering::Relaxed),
        shards: n_shards,
    }
}

/// Bound the total number of cached tapes (clamped to a minimum of 1).
/// Each of the N shards gets `max(1, capacity / N)`; shrinking below the
/// current occupancy evicts least-recently-used entries immediately,
/// per shard.
pub fn set_tape_cache_capacity(capacity: usize) {
    let capacity = capacity.max(1);
    CACHE_CAPACITY.store(capacity, Ordering::Relaxed);
    let guard = shards().read().unwrap_or_else(|e| e.into_inner());
    let per = per_shard_capacity(capacity, guard.len());
    for shard in guard.iter() {
        let mut st = shard.lock().unwrap_or_else(|e| e.into_inner());
        st.capacity = per;
        st.evict_to_capacity();
    }
}

/// Reshard the tape cache for `workers` concurrent submitters: the
/// shard count becomes `next_power_of_two(workers)` (clamped to
/// 1..=[`MAX_TAPE_CACHE_SHARDS`]), keyed by an FNV-1a hash of the graph
/// encoding. Resident entries are redistributed with their recency
/// stamps intact; the per-shard bound becomes `max(1, capacity / N)`,
/// which may evict if a shard ends up oversubscribed. With one shard
/// (the default) lookup, insert and eviction order are byte-for-byte
/// the pre-sharding behavior.
pub fn set_tape_cache_shards(workers: usize) {
    let n = workers
        .clamp(1, MAX_TAPE_CACHE_SHARDS)
        .next_power_of_two()
        .min(MAX_TAPE_CACHE_SHARDS);
    let mut guard = shards().write().unwrap_or_else(|e| e.into_inner());
    if guard.len() == n {
        return;
    }
    let per = per_shard_capacity(CACHE_CAPACITY.load(Ordering::Relaxed), n);
    let mut next: Vec<Mutex<TapeCacheState>> = (0..n).map(|_| new_shard(per)).collect();
    // carry entries (and the tick high-water mark) over so resharding
    // never cold-starts a warm server
    let mut max_tick = 0u64;
    for shard in guard.drain(..) {
        let st = shard.into_inner().unwrap_or_else(|e| e.into_inner());
        max_tick = max_tick.max(st.tick);
        for (key, entry) in st.map {
            let idx = shard_index(&key, n);
            next[idx].get_mut().unwrap().map.insert(key, entry);
        }
    }
    for shard in next.iter_mut() {
        let st = shard.get_mut().unwrap();
        st.tick = st.tick.max(max_tick);
        st.evict_to_capacity();
    }
    *guard = next;
}

/// Current shard count of the tape cache.
pub fn tape_cache_shards() -> usize {
    shards().read().unwrap_or_else(|e| e.into_inner()).len()
}

/// Drop every cached tape (benchmarks use this to measure cold compiles).
pub fn clear_tape_cache() {
    for_each_shard(|st| st.map.clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdfg::NodeId;
    use crate::fuse::{fuse_critical_paths, FusionConfig};
    use crate::interp::{eval_bit_accurate, eval_f64};

    /// Listing 1 of the paper: a three-link multiply-add chain.
    fn listing1() -> Cdfg {
        let mut g = Cdfg::new();
        let v: Vec<NodeId> = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "k"]
            .iter()
            .map(|s| g.input(*s))
            .collect();
        let m1 = g.mul(v[0], v[1]);
        let m2 = g.mul(v[2], v[3]);
        let x1 = g.add(m1, m2);
        let m3 = g.mul(v[4], v[5]);
        let m4 = g.mul(v[6], x1);
        let x2 = g.add(m3, m4);
        let m5 = g.mul(v[7], v[8]);
        let m6 = g.mul(v[9], x2);
        let x3 = g.add(m5, m6);
        g.output("x3", x3);
        g
    }

    fn listing1_row(tape: &Tape) -> (Vec<f64>, HashMap<String, f64>) {
        let vals: HashMap<String, f64> = [
            ("a", 1.5),
            ("b", -2.25),
            ("c", 0.3),
            ("d", 7.0),
            ("e", -0.001),
            ("f", 42.0),
            ("g", 1e10),
            ("h", -3.5),
            ("i", 0.125),
            ("k", 9.9),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        let row = tape
            .input_names()
            .iter()
            .map(|n| vals[n.as_str()])
            .collect();
        (row, vals)
    }

    fn run_one(tape: &Tape, backend: TapeBackend, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; tape.num_outputs()];
        tape.eval_row(backend, row, &mut out, &mut tape.scratch());
        out
    }

    #[test]
    fn tape_matches_both_oracles_on_listing1() {
        let g = listing1();
        let tape = compile(&g).unwrap();
        let (row, vals) = listing1_row(&tape);
        let got_f = run_one(&tape, TapeBackend::F64, &row);
        let got_b = run_one(&tape, TapeBackend::BitAccurate, &row);
        let want_f = eval_f64(&g, &vals);
        let want_b = eval_bit_accurate(&g, &vals);
        assert_eq!(got_f[0].to_bits(), want_f["x3"].to_bits());
        assert_eq!(got_b[0].to_bits(), want_b["x3"].to_bits());
    }

    #[test]
    fn tape_matches_both_oracles_on_fused_graph() {
        for kind in [FmaKind::Pcs, FmaKind::Fcs] {
            let g = fuse_critical_paths(&listing1(), &FusionConfig::new(kind)).fused;
            let tape = compile(&g).unwrap();
            let (row, vals) = listing1_row(&tape);
            let got_f = run_one(&tape, TapeBackend::F64, &row);
            let got_b = run_one(&tape, TapeBackend::BitAccurate, &row);
            let want_f = eval_f64(&g, &vals);
            let want_b = eval_bit_accurate(&g, &vals);
            assert_eq!(got_f[0].to_bits(), want_f["x3"].to_bits(), "{kind:?} f64");
            assert_eq!(got_b[0].to_bits(), want_b["x3"].to_bits(), "{kind:?} bit");
        }
    }

    #[test]
    fn register_slots_are_reused() {
        // a long dependent chain keeps only a handful of values live, so
        // linear-scan allocation must stay far below one slot per node
        let mut g = Cdfg::new();
        let mut x = g.input("x0");
        for i in 0..100 {
            let c = g.input(format!("c{i}"));
            let m = g.mul(c, x);
            x = g.add(m, x);
        }
        g.output("y", x);
        let tape = compile(&g).unwrap();
        assert!(
            tape.num_f64_regs() <= 4,
            "peak live registers {} should be tiny for a chain",
            tape.num_f64_regs()
        );
        assert_eq!(tape.source_nodes(), g.len());
    }

    #[test]
    fn eval_batch_matches_row_loop_and_is_thread_invariant() {
        let g = fuse_critical_paths(&listing1(), &FusionConfig::new(FmaKind::Pcs)).fused;
        let tape = compile(&g).unwrap();
        let ni = tape.num_inputs();
        // enough rows for several chunks
        let n = 3 * CHUNK_ROWS + 7;
        let rows: Vec<f64> = (0..n * ni)
            .map(|i| ((i * 2654435761) % 1000) as f64 * 0.17 - 85.0)
            .collect();
        for backend in [TapeBackend::F64, TapeBackend::BitAccurate] {
            let seq: Vec<f64> = {
                let mut s = tape.scratch();
                let mut out = vec![0.0; n * tape.num_outputs()];
                for r in 0..n {
                    let (lo, hi) = (r * ni, (r + 1) * ni);
                    tape.eval_row(backend, &rows[lo..hi], &mut out[r..r + 1], &mut s);
                }
                out
            };
            for threads in [1usize, 2, 8] {
                let got = tape.eval_batch(backend, &rows, threads);
                assert!(
                    got.iter()
                        .zip(seq.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{backend:?} diverged at {threads} threads"
                );
            }
        }
    }

    /// Serializes tests that mutate the process-wide tape cache (its
    /// capacity or its entry set), so LRU eviction in one test cannot
    /// break `Arc::ptr_eq` assertions in another.
    fn cache_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn cache_returns_shared_tape() {
        let _guard = cache_test_lock();
        let g = listing1();
        let s0 = tape_cache_stats();
        let a = compile_cached(&g).unwrap();
        let b = compile_cached(&g).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s1 = tape_cache_stats();
        assert!(s1.hits > s0.hits, "second compile must hit the cache");
        assert!(s1.misses > s0.misses, "first compile must miss the cache");
        assert!(s1.entries >= 1);
        // the tape snapshots the counters it observed when compiled
        assert!(a.opt_stats().cache_misses >= 1);
        // structurally identical but separately built graph also hits
        let c = compile_cached(&listing1()).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(a.fingerprint(), graph_fingerprint(&listing1()));
    }

    #[test]
    fn cache_capacity_is_bounded_lru() {
        let _guard = cache_test_lock();
        let s0 = tape_cache_stats();
        set_tape_cache_capacity(4);
        // six structurally distinct graphs through a four-entry cache:
        // at least two must be evicted, oldest first
        let tapes: Vec<_> = (0..6)
            .map(|i| {
                let mut g = listing1();
                g.output(format!("lru_probe_{i}"), g.outputs()[0] - 1);
                compile_cached(&g).unwrap()
            })
            .collect();
        let s1 = tape_cache_stats();
        assert_eq!(s1.capacity, 4);
        assert!(s1.entries <= 4, "{s1:?}");
        assert!(s1.evictions >= s0.evictions + 2, "{s1:?}");
        // the most recent entry is still resident and hits
        let mut g5 = listing1();
        g5.output("lru_probe_5", g5.outputs()[0] - 1);
        let again = compile_cached(&g5).unwrap();
        assert!(Arc::ptr_eq(&tapes[5], &again));
        set_tape_cache_capacity(DEFAULT_TAPE_CACHE_CAPACITY);
    }

    #[test]
    fn compiler_panic_is_structured_and_never_cached() {
        let _guard = cache_test_lock();
        let mut g = listing1();
        g.output("panic_probe", g.outputs()[0] - 1);
        let before = tape_cache_stats();
        PANIC_NEXT_COMPILE.store(true, Ordering::Relaxed);
        let err = compile_cached(&g).unwrap_err();
        assert!(
            err.diagnostics
                .iter()
                .any(|d| d.rule == Rule::CompilerPanic),
            "{err}"
        );
        assert!(err.to_string().contains("X001"), "{err}");
        let mid = tape_cache_stats();
        assert_eq!(
            mid.entries, before.entries,
            "poisoned compile must not be cached"
        );
        assert_eq!(mid.misses, before.misses, "a panic is not a miss");
        // a clean retry compiles fresh and succeeds
        let tape = compile_cached(&g).unwrap();
        assert_eq!(tape.fingerprint(), graph_fingerprint(&g));
    }

    #[test]
    fn optimizer_tape_is_byte_identical_to_unoptimized() {
        // foldable constants, a repeated subexpression and a dead input:
        // the optimizer must shrink the tape without changing the row
        // layout or any output bit on either backend
        let src = "unused = u * u;\nscale = 2.0 * 2.0 + 1.0;\nout y = a*b + a*b + scale;\n";
        let g = crate::parse_program(src).unwrap();
        let opt = compile(&g).unwrap();
        let plain = compile_with_options(
            &g,
            CompileOptions {
                optimize: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(opt.input_names(), plain.input_names());
        assert_eq!(opt.output_names(), plain.output_names());
        assert!(
            opt.instrs().len() < plain.instrs().len(),
            "optimizer removed nothing: {} vs {}",
            opt.instrs().len(),
            plain.instrs().len()
        );
        let stats = opt.opt_stats();
        assert!(stats.consts_folded >= 2, "{stats:?}");
        assert!(stats.cse_merged >= 1, "{stats:?}");
        assert!(stats.dead_removed >= 1, "{stats:?}");
        assert!(
            stats.dead_slots_removed >= 1,
            "the dead input's LoadInput must die at tape level: {stats:?}"
        );
        assert_eq!(plain.opt_stats().consts_folded, 0);
        let ni = opt.num_inputs();
        let n = CHUNK_ROWS + 13;
        let rows: Vec<f64> = (0..n * ni)
            .map(|i| ((i * 48271) % 2000) as f64 * 0.37 - 370.0)
            .collect();
        for backend in [TapeBackend::F64, TapeBackend::BitAccurate] {
            let a = opt.eval_batch(backend, &rows, 2);
            let b = plain.eval_batch(backend, &rows, 2);
            assert!(
                a.iter()
                    .zip(b.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{backend:?}: optimized tape diverged"
            );
        }
    }

    #[test]
    fn cache_distinguishes_optimize_flag() {
        let _guard = cache_test_lock();
        // distinct from every other cached graph in this test binary so
        // the hit/miss counters of sibling tests stay undisturbed
        let mut g = listing1();
        g.output("x3_flag_probe", g.outputs()[0] - 1);
        let a = compile_cached(&g).unwrap();
        let b = compile_cached_with(
            &g,
            CompileOptions {
                optimize: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        // but both identify as the same source graph
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.source_nodes(), b.source_nodes());
    }

    /// Mutation test for the sharding refactor: a single-shard cache
    /// must reproduce the pre-sharding eviction order exactly — touch
    /// order decides the victim, not insertion order.
    #[test]
    fn single_shard_reproduces_unsharded_eviction_order() {
        let _guard = cache_test_lock();
        set_tape_cache_shards(1);
        assert_eq!(tape_cache_stats().shards, 1);
        clear_tape_cache();
        set_tape_cache_capacity(3);
        let probe = |i: usize| {
            let mut g = listing1();
            g.output(format!("shard1_probe_{i}"), g.outputs()[0] - 1);
            g
        };
        let a = compile_cached(&probe(0)).unwrap();
        let _b = compile_cached(&probe(1)).unwrap();
        let c = compile_cached(&probe(2)).unwrap();
        // touch A so B becomes least-recently-used, then overflow with D:
        // the classic LRU order evicts B and only B
        let a2 = compile_cached(&probe(0)).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        let ev0 = tape_cache_stats().evictions;
        let d = compile_cached(&probe(3)).unwrap();
        assert_eq!(tape_cache_stats().evictions, ev0 + 1);
        // A, C, D resident (hits); B was the victim (miss, fresh tape)
        let m0 = tape_cache_stats().misses;
        assert!(Arc::ptr_eq(&a, &compile_cached(&probe(0)).unwrap()));
        assert!(Arc::ptr_eq(&c, &compile_cached(&probe(2)).unwrap()));
        assert!(Arc::ptr_eq(&d, &compile_cached(&probe(3)).unwrap()));
        assert_eq!(tape_cache_stats().misses, m0, "A/C/D must all hit");
        let b2 = compile_cached(&probe(1)).unwrap();
        assert!(!Arc::ptr_eq(&_b, &b2), "B must have been the LRU victim");
        assert_eq!(tape_cache_stats().misses, m0 + 1);
        set_tape_cache_capacity(DEFAULT_TAPE_CACHE_CAPACITY);
    }

    #[test]
    fn sharded_cache_aggregates_stats_exactly() {
        let _guard = cache_test_lock();
        set_tape_cache_shards(8);
        let s = tape_cache_stats();
        assert_eq!(s.shards, 8);
        assert_eq!(tape_cache_shards(), 8);
        clear_tape_cache();
        assert_eq!(tape_cache_stats().entries, 0);
        let s0 = tape_cache_stats();
        let n = 12usize;
        let tapes: Vec<_> = (0..n)
            .map(|i| {
                let mut g = listing1();
                g.output(format!("shard8_probe_{i}"), g.outputs()[0] - 1);
                compile_cached(&g).unwrap()
            })
            .collect();
        let s1 = tape_cache_stats();
        assert_eq!(s1.misses, s0.misses + n as u64, "one miss per graph");
        assert_eq!(s1.entries, s0.entries + n, "entries sum over shards");
        assert_eq!(s1.evictions, s0.evictions, "no shard may overflow here");
        // every entry hits again, from whichever shard owns it, and the
        // resident Arc is shared
        for (i, t) in tapes.iter().enumerate() {
            let mut g = listing1();
            g.output(format!("shard8_probe_{i}"), g.outputs()[0] - 1);
            assert!(Arc::ptr_eq(t, &compile_cached(&g).unwrap()));
        }
        let s2 = tape_cache_stats();
        assert_eq!(s2.hits, s1.hits + n as u64);
        assert_eq!(s2.misses, s1.misses);
        set_tape_cache_shards(1);
    }

    #[test]
    fn resharding_preserves_resident_entries() {
        let _guard = cache_test_lock();
        set_tape_cache_shards(1);
        let mut g = listing1();
        g.output("reshard_probe", g.outputs()[0] - 1);
        let a = compile_cached(&g).unwrap();
        // shard count requests round up to the next power of two
        set_tape_cache_shards(5);
        assert_eq!(tape_cache_shards(), 8);
        let m0 = tape_cache_stats().misses;
        let b = compile_cached(&g).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "warm entry must survive the reshard migration"
        );
        assert_eq!(tape_cache_stats().misses, m0);
        set_tape_cache_shards(1);
        let c = compile_cached(&g).unwrap();
        assert!(Arc::ptr_eq(&a, &c), "and survive merging back down");
    }

    #[test]
    fn oracle_backend_is_bit_identical_to_bit_accurate() {
        let g = fuse_critical_paths(&listing1(), &FusionConfig::new(FmaKind::Pcs)).fused;
        let tape = compile(&g).unwrap();
        let ni = tape.num_inputs();
        let n = CHUNK_ROWS + 9;
        let mut rows: Vec<f64> = (0..n * ni)
            .map(|i| ((i * 2654435761) % 1000) as f64 * 0.23 - 115.0)
            .collect();
        rows[0] = f64::NAN;
        rows[1] = -0.0;
        rows[2] = f64::INFINITY;
        let bit = tape.eval_batch(TapeBackend::BitAccurate, &rows, 2);
        let oracle = tape.eval_batch(TapeBackend::Oracle, &rows, 2);
        assert!(
            bit.iter()
                .zip(oracle.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "oracle backend diverged from bit-accurate"
        );
        // and through the row entry point
        let mut s = tape.scratch();
        let mut o1 = vec![0.0; tape.num_outputs()];
        tape.eval_row(TapeBackend::Oracle, &rows[..ni], &mut o1, &mut s);
        assert_eq!(o1[0].to_bits(), bit[0].to_bits());
    }

    #[test]
    fn instructions_carry_source_node_provenance() {
        // optimizer active: provenance must survive folding, CSE, DCE,
        // reordering and tape-level dead-slot elimination
        let src = "unused = u * u;\nscale = 2.0 * 2.0 + 1.0;\nout y = a*b + a*b + scale;\n";
        let g = crate::parse_program(src).unwrap();
        for opts in [
            CompileOptions {
                optimize: true,
                ..CompileOptions::default()
            },
            CompileOptions {
                optimize: false,
                ..CompileOptions::default()
            },
        ] {
            let tape = compile_with_options(&g, opts).unwrap();
            assert_eq!(tape.instrs().len(), tape.instr_nodes.len());
            for i in 0..tape.instrs().len() {
                let node = tape.source_node_of(i).expect("every instr maps to a node");
                assert!(node < g.len(), "node id {node} out of source range");
            }
            let store_idx = tape
                .instrs()
                .iter()
                .position(|i| matches!(i, Instr::Store { .. }))
                .unwrap();
            let node = tape.source_node_of(store_idx).unwrap();
            assert!(
                matches!(g.nodes()[node].op, Op::Output(_)),
                "Store must map back to the source Output node"
            );
        }
    }

    #[test]
    fn compile_rejects_graph_with_checker_errors() {
        let mut g = Cdfg::new();
        let a = g.input("a");
        // D001: Add with one argument, planted behind the validator's back
        g.push_unchecked(Op::Add, vec![a]);
        let err = compile(&g).unwrap_err();
        assert!(!err.diagnostics.is_empty());
        assert!(err
            .diagnostics
            .iter()
            .all(|d| d.severity == Severity::Error));
        let msg = err.to_string();
        assert!(msg.contains("cannot compile"), "{msg}");
    }

    #[test]
    fn warnings_do_not_block_compilation() {
        // dead node (D005) and a no-sink graph (D006) are warnings
        let mut g = Cdfg::new();
        let a = g.input("a");
        let b = g.input("b");
        g.add(a, b); // dead: never reaches an output
        let x = g.mul(a, b);
        g.output("y", x);
        compile(&g).expect("warnings must not gate the tape");
    }
}
