//! The automatic FMA insertion pass (Sec. III-I, Fig. 12).
//!
//! Starting from a scheduled IEEE-754 datapath, the pass repeatedly:
//!
//! 1. finds a multiply→add pair where **both** nodes lie on a critical
//!    path (zero slack between ASAP and ALAP schedules),
//! 2. replaces the pair with a carry-save FMA surrounded by the required
//!    `IEEE ↔ CS` conversions (Fig. 12b) — subtractions fold into the
//!    unit via the free sign flip of the `B` input or the addend,
//! 3. cancels back-to-back `CS → IEEE → CS` conversion pairs between
//!    chained FMAs (Fig. 12c) and drops dead nodes,
//! 4. reschedules,
//!
//! until no zero-slack multiply→add pair remains.

use crate::cdfg::{Cdfg, Domain, FmaKind, NodeId, Op};
use crate::lint::{debug_assert_dataflow_clean, lint_schedule};
use crate::sched::{alap_schedule, asap_schedule, OpTiming, ResourceLimits};

/// Configuration of the fusion pass.
#[derive(Clone, Copy, Debug)]
pub struct FusionConfig {
    /// Which FMA unit to insert.
    pub kind: FmaKind,
    /// Operator timing used for the schedules.
    pub timing: OpTiming,
    /// Safety bound on fusion iterations.
    pub max_passes: usize,
}

impl FusionConfig {
    /// Default pass for a unit kind.
    pub fn new(kind: FmaKind) -> Self {
        FusionConfig {
            kind,
            timing: OpTiming::default(),
            max_passes: 100_000,
        }
    }
}

/// Outcome of the pass.
#[derive(Clone, Debug)]
pub struct FusionReport {
    /// The transformed datapath.
    pub fused: Cdfg,
    /// Dataflow schedule length before any fusion.
    pub initial_length: u32,
    /// Dataflow schedule length after the pass.
    pub final_length: u32,
    /// Number of FMA nodes inserted (before time-multiplexing).
    pub fma_nodes: usize,
    /// Fusion iterations performed.
    pub passes: usize,
}

/// One fusible candidate: an add/sub consuming a multiply, both critical.
struct Candidate {
    add_id: NodeId,
    mul_id: NodeId,
    /// Addend (IEEE), to be converted; `negate_a` folds `m - x` patterns.
    a_arg: NodeId,
    negate_a: bool,
    /// IEEE multiplier input `B`; `negate_b` folds `x - m` patterns.
    b_arg: NodeId,
    negate_b: bool,
    /// Critical multiplier input `C` (goes through the CS port).
    c_arg: NodeId,
}

fn find_candidates(g: &Cdfg, t: &OpTiming) -> Vec<Candidate> {
    let s = asap_schedule(g, t);
    let alap = alap_schedule(g, t);
    let critical = |id: NodeId| s.start[id] == alap.start[id];
    let finish = |id: NodeId| s.start[id] + t.latency(&g.nodes()[id].op);

    let mut out = Vec::new();
    for add_id in 0..g.len() {
        let n = &g.nodes()[add_id];
        let (is_sub, ok) = match n.op {
            Op::Add => (false, true),
            Op::Sub => (true, true),
            _ => (false, false),
        };
        if !ok || !critical(add_id) {
            continue;
        }
        // find a critical multiply among the arguments
        for (pos, &arg) in n.args.iter().enumerate() {
            if !matches!(g.nodes()[arg].op, Op::Mul) || !critical(arg) {
                continue;
            }
            let mul_id = arg;
            let other = n.args[1 - pos];
            let (negate_a, negate_b) = if !is_sub {
                (false, false)
            } else if pos == 1 {
                (false, true) // x - m  =  x + (-b)*c
            } else {
                (true, false) // m - x  =  (-x) + b*c
            };
            // pick the critical (later-finishing) multiplier input as C
            let (u, w) = (g.nodes()[mul_id].args[0], g.nodes()[mul_id].args[1]);
            let (b_arg, c_arg) = if finish(u) >= finish(w) {
                (w, u)
            } else {
                (u, w)
            };
            out.push(Candidate {
                add_id,
                mul_id,
                a_arg: other,
                negate_a,
                b_arg,
                negate_b,
                c_arg,
            });
        }
    }
    out
}

/// Rebuild the graph with one candidate replaced by a conversion-wrapped
/// FMA (Fig. 12b).
fn apply(g: &Cdfg, cand: &Candidate, kind: FmaKind) -> Cdfg {
    let mut out = Cdfg::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(g.len());
    for (id, n) in g.nodes().iter().enumerate() {
        if id == cand.add_id {
            let mut a = map[cand.a_arg];
            if cand.negate_a {
                a = out.push(Op::Neg, vec![a]);
            }
            let a_cs = out.push(Op::IeeeToCs(kind), vec![a]);
            let c_cs = out.push(Op::IeeeToCs(kind), vec![map[cand.c_arg]]);
            let fma = out.push(
                Op::Fma {
                    kind,
                    negate_b: cand.negate_b,
                },
                vec![a_cs, map[cand.b_arg], c_cs],
            );
            let res = out.push(Op::CsToIeee(kind), vec![fma]);
            map.push(res);
        } else {
            let args = n.args.iter().map(|&a| map[a]).collect();
            map.push(out.push(n.op.clone(), args));
        }
    }
    let _ = cand.mul_id; // kept; dead-eliminated if unused
    out
}

/// Cancel `IEEE→CS` conversions fed by matching `CS→IEEE` conversions and
/// deduplicate identical conversions of the same source (Fig. 12c).
fn eliminate_conversions(g: &Cdfg) -> Cdfg {
    let mut out = Cdfg::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(g.len());
    let mut conv_cache: std::collections::HashMap<(NodeId, bool), NodeId> = Default::default();
    for n in g.nodes() {
        let mapped: Vec<NodeId> = n.args.iter().map(|&a| map[a]).collect();
        let id = match &n.op {
            Op::IeeeToCs(k) => {
                let src = mapped[0];
                // feed of a matching CS→IEEE? use the CS value directly
                if let Op::CsToIeee(k2) = &out.nodes()[src].op {
                    if k2 == k {
                        map.push(out.nodes()[src].args[0]);
                        continue;
                    }
                }
                *conv_cache
                    .entry((src, true))
                    .or_insert_with(|| out.push(Op::IeeeToCs(*k), vec![src]))
            }
            Op::CsToIeee(k) => *conv_cache
                .entry((mapped[0], false))
                .or_insert_with(|| out.push(Op::CsToIeee(*k), vec![mapped[0]])),
            _ => out.push(n.op.clone(), mapped),
        };
        map.push(id);
    }
    out
}

/// Run the full Fig. 12 pass.
///
/// ```
/// use csfma_hls::{fuse_critical_paths, parse_program, FmaKind, FusionConfig};
/// let g = parse_program("x1 = a*b + c*d; x2 = e*f + g*x1; out y = h*i + k*x2;").unwrap();
/// let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs));
/// assert!(rep.final_length < rep.initial_length);
/// assert_eq!(rep.fma_nodes, 3); // all three chain links fuse
/// ```
pub fn fuse_critical_paths(g: &Cdfg, cfg: &FusionConfig) -> FusionReport {
    g.validate();
    let t = &cfg.timing;
    let initial_length = asap_schedule(g, t).length;
    let mut cur = g.clone();
    let mut cur_length = initial_length;
    let mut passes = 0;
    'outer: while passes < cfg.max_passes {
        // try candidates in discovery order; accept the first that does
        // not lengthen the dataflow schedule (neutral fusions are kept:
        // they become profitable once neighboring links fuse and the
        // conversions between them cancel)
        for cand in find_candidates(&cur, t) {
            let trial = eliminate_conversions(&apply(&cur, &cand, cfg.kind))
                .eliminate_dead()
                .0;
            // every trial rewrite must leave the graph domain-consistent,
            // whether or not it is accepted (debug builds only)
            debug_assert_dataflow_clean(&trial, t, "fusion trial rewrite");
            let len = asap_schedule(&trial, t).length;
            if len <= cur_length {
                cur = trial;
                cur_length = len;
                passes += 1;
                continue 'outer;
            }
        }
        break;
    }
    cur.validate();
    debug_assert_dataflow_clean(&cur, t, "fusion result");
    let final_length = asap_schedule(&cur, t).length;
    if cfg!(debug_assertions) {
        // the dataflow schedule of the fused graph must be hazard-free
        let s = asap_schedule(&cur, t);
        let diags = lint_schedule(&cur, t, &s, &ResourceLimits::default());
        assert!(
            diags.is_empty(),
            "fused schedule has hazards:\n{}",
            csfma_verify::render_report(&diags)
        );
    }
    let fma_nodes = cur.count_ops(|o| matches!(o, Op::Fma { .. }));
    FusionReport {
        fused: cur,
        initial_length,
        final_length,
        fma_nodes,
        passes,
    }
}

/// Sanity helper for tests and reports: domains of all nodes are
/// consistent and every FMA is conversion-wrapped or chained.
pub fn domains_consistent(g: &Cdfg) -> bool {
    g.nodes().iter().all(|n| match &n.op {
        Op::Fma { .. } => {
            g.nodes()[n.args[0]].op.domain() == Domain::Cs
                && g.nodes()[n.args[1]].op.domain() == Domain::Ieee
                && g.nodes()[n.args[2]].op.domain() == Domain::Cs
        }
        _ => true,
    })
}
