//! Adapter from the [`Cdfg`] IR to `csfma-verify`'s normalized view,
//! plus convenience entry points that run the checker passes.
//!
//! `csfma-verify` sits below this crate in the dependency graph, so its
//! passes cannot see [`Cdfg`] directly; this module translates a graph
//! (with its operator timing and resource classes) into a
//! [`verify::Graph`] and a [`Schedule`] into a [`verify::ScheduleView`].
//! The fusion and cleanup passes re-run the checker through these entry
//! points after every rewrite in debug builds, and the `csfma-lint` CLI
//! uses them to lint textual datapaths.

use crate::cdfg::{Cdfg, Domain, FmaKind, Op};
use crate::compile::{Instr, Tape};
use crate::interp::format_of;
use crate::sched::{resource_kind, OpTiming, ResourceKind, ResourceLimits, Schedule};
use csfma_verify as verify;
use csfma_verify::Diagnostic;

/// Stable resource-class tag used in `verify` capacity checks.
pub fn resource_tag(kind: ResourceKind) -> &'static str {
    match kind {
        ResourceKind::Mul => "mul",
        ResourceKind::Add => "add",
        ResourceKind::Div => "div",
        ResourceKind::Fma => "fma",
        ResourceKind::Convert => "convert",
        ResourceKind::Free => "free",
    }
}

fn check_domain(d: Domain) -> verify::Domain {
    match d {
        Domain::Ieee => verify::Domain::Ieee,
        Domain::Cs => verify::Domain::Cs,
    }
}

/// Expected domain of each argument port of `op` — the same contract
/// `Cdfg::validate` enforces, expressed as data.
pub fn port_domains(op: &Op) -> Vec<Domain> {
    match op {
        Op::Input(_) | Op::Const(_) => vec![],
        Op::Neg | Op::Output(_) | Op::IeeeToCs(_) => vec![Domain::Ieee],
        Op::CsToIeee(_) => vec![Domain::Cs],
        Op::Add | Op::Sub | Op::Mul | Op::Div => vec![Domain::Ieee, Domain::Ieee],
        Op::Fma { .. } => vec![Domain::Cs, Domain::Ieee, Domain::Cs],
    }
}

fn label(op: &Op) -> String {
    match op {
        Op::Input(n) => format!("Input({n})"),
        Op::Const(v) => format!("Const({v})"),
        Op::Add => "Add".into(),
        Op::Sub => "Sub".into(),
        Op::Mul => "Mul".into(),
        Op::Div => "Div".into(),
        Op::Neg => "Neg".into(),
        Op::Fma { kind, negate_b } => format!("Fma({kind:?}, negate_b={negate_b})"),
        Op::IeeeToCs(k) => format!("IeeeToCs({k:?})"),
        Op::CsToIeee(k) => format!("CsToIeee({k:?})"),
        Op::Output(n) => format!("Output({n})"),
    }
}

/// Translate a [`Cdfg`] into the checker's normalized view.
pub fn to_check_graph(g: &Cdfg, t: &OpTiming) -> verify::Graph {
    let mut out = verify::Graph::new();
    for n in g.nodes() {
        let role = match n.op {
            Op::Input(_) | Op::Const(_) => verify::Role::Source,
            Op::Output(_) => verify::Role::Sink,
            _ => verify::Role::Interior,
        };
        let mut node = verify::Node::new(label(&n.op), check_domain(n.op.domain()))
            .with_args(
                n.args.clone(),
                port_domains(&n.op).into_iter().map(check_domain).collect(),
            )
            .with_latency(t.latency(&n.op))
            .with_resource(resource_tag(resource_kind(&n.op)))
            .with_role(role);
        node = match &n.op {
            Op::IeeeToCs(k) => node.with_conversion(format_of(*k).name, verify::Domain::Cs),
            Op::CsToIeee(k) => node.with_conversion(format_of(*k).name, verify::Domain::Ieee),
            _ => node,
        };
        out.push(node);
    }
    out
}

/// Translate a [`Schedule`] into the checker's view.
pub fn schedule_view(s: &Schedule) -> verify::ScheduleView {
    verify::ScheduleView {
        start: s.start.iter().map(|&c| Some(c)).collect(),
        length: s.length,
    }
}

/// Capacity list for [`verify::check_schedule`] from [`ResourceLimits`].
pub fn capacity_list(limits: &ResourceLimits) -> Vec<(&'static str, usize)> {
    [
        ("mul", limits.mul),
        ("add", limits.add),
        ("div", limits.div),
        ("fma", limits.fma),
    ]
    .into_iter()
    .filter_map(|(tag, cap)| cap.map(|c| (tag, c)))
    .collect()
}

/// Run the dataflow pass over a [`Cdfg`].
pub fn lint_dataflow(g: &Cdfg, t: &OpTiming) -> Vec<Diagnostic> {
    verify::check_dataflow(&to_check_graph(g, t))
}

/// Run the schedule hazard pass over a computed [`Schedule`].
pub fn lint_schedule(
    g: &Cdfg,
    t: &OpTiming,
    s: &Schedule,
    limits: &ResourceLimits,
) -> Vec<Diagnostic> {
    verify::check_schedule(
        &to_check_graph(g, t),
        &schedule_view(s),
        &capacity_list(limits),
    )
}

/// Debug-build guard used by the rewrite passes: panic with a rendered
/// report if `g` has dataflow *errors* (warnings pass).
#[track_caller]
pub fn debug_assert_dataflow_clean(g: &Cdfg, t: &OpTiming, context: &str) {
    if cfg!(debug_assertions) {
        let diags = lint_dataflow(g, t);
        if verify::has_errors(&diags) {
            panic!(
                "{context}: dataflow check failed\n{}",
                verify::render_report(&diags)
            );
        }
    }
}

fn cs_kind(k: FmaKind) -> verify::CsKind {
    match k {
        FmaKind::Pcs => verify::CsKind::Pcs,
        FmaKind::Fcs => verify::CsKind::Fcs,
    }
}

/// Translate a [`Cdfg`] into the tape validator's normalized source
/// view (same adapter pattern as [`to_check_graph`], for the `T*`/`R*`
/// passes which need the actual operations, not timing metadata).
pub fn to_source_view(g: &Cdfg) -> verify::SourceView {
    let nodes = g
        .nodes()
        .iter()
        .map(|n| {
            let op = match &n.op {
                Op::Input(name) => verify::SrcOp::Input(name.clone()),
                Op::Const(v) => verify::SrcOp::Const(*v),
                Op::Add => verify::SrcOp::Add,
                Op::Sub => verify::SrcOp::Sub,
                Op::Mul => verify::SrcOp::Mul,
                Op::Div => verify::SrcOp::Div,
                Op::Neg => verify::SrcOp::Neg,
                Op::Fma { kind, negate_b } => verify::SrcOp::Fma {
                    kind: cs_kind(*kind),
                    negate_b: *negate_b,
                },
                Op::IeeeToCs(k) => verify::SrcOp::IeeeToCs(cs_kind(*k)),
                Op::CsToIeee(k) => verify::SrcOp::CsToIeee(cs_kind(*k)),
                Op::Output(name) => verify::SrcOp::Output(name.clone()),
            };
            verify::SrcNode {
                op,
                args: n.args.clone(),
            }
        })
        .collect();
    verify::SourceView { nodes }
}

/// Translate a compiled [`Tape`] into the validator's normalized view.
pub fn to_tape_view(tape: &Tape) -> verify::TapeView {
    let instrs = tape
        .instrs
        .iter()
        .map(|ins| match *ins {
            Instr::LoadInput { dst, input } => verify::TapeInstr::LoadInput { dst, input },
            Instr::LoadConst { dst, idx } => verify::TapeInstr::LoadConst { dst, idx },
            Instr::Add { dst, a, b } => verify::TapeInstr::Add { dst, a, b },
            Instr::Sub { dst, a, b } => verify::TapeInstr::Sub { dst, a, b },
            Instr::Mul { dst, a, b } => verify::TapeInstr::Mul { dst, a, b },
            Instr::Div { dst, a, b } => verify::TapeInstr::Div { dst, a, b },
            Instr::Neg { dst, a } => verify::TapeInstr::Neg { dst, a },
            Instr::Fma {
                kind,
                negate_b,
                dst,
                acc,
                b,
                mulc,
            } => verify::TapeInstr::Fma {
                kind: cs_kind(kind),
                negate_b,
                dst,
                acc,
                b,
                mulc,
            },
            Instr::IeeeToCs { kind, dst, src } => verify::TapeInstr::IeeeToCs {
                kind: cs_kind(kind),
                dst,
                src,
            },
            Instr::CsToIeee { dst, src } => verify::TapeInstr::CsToIeee { dst, src },
            Instr::Store { output, src } => verify::TapeInstr::Store { output, src },
        })
        .collect();
    verify::TapeView {
        instrs,
        provenance: tape.instr_nodes.clone(),
        inputs: tape.inputs.clone(),
        outputs: tape.outputs.clone(),
        consts: tape.consts.clone(),
        n_f64_regs: tape.n_f64_regs,
        n_cs_regs: tape.n_cs_regs,
    }
}

/// Run the tape translation validator (`T*` rules): check that `tape`
/// is a faithful lowering of the **source** graph `g` it was compiled
/// from. An empty result proves slot def-before-use, positional I/O
/// layout, CS-format consistency, provenance integrity and per-operand
/// value ancestry all survived the optimizer and the slot-reusing
/// register allocator.
pub fn verify_tape(tape: &Tape, g: &Cdfg) -> Vec<Diagnostic> {
    verify::check_tape(&to_tape_view(tape), &to_source_view(g))
}

/// Run the value-range abstract interpretation (`R*` rules) over `g`
/// with the declared input ranges `decls` (from
/// `in x [lo, hi];` declarations; an empty slice analyzes every input
/// as unbounded, which reports nothing).
pub fn lint_ranges(g: &Cdfg, decls: &[verify::RangeDecl]) -> verify::RangeReport {
    verify::analyze_ranges(&to_source_view(g), decls)
}

/// Derive a fast-path promotion mask for `tape` from a range analysis
/// of its source graph: instruction `i` is promotable when it is an
/// IEEE `Add`/`Sub`/`Mul`/`Div`/`Neg` and the [`RangeReport`] proved
/// the soft-float guard can never fire on the source node named by the
/// tape's provenance (`tape.source_node_of(i)`). Feed the result to
/// [`Tape::set_promoted`].
///
/// [`RangeReport`]: verify::RangeReport
pub fn promotion_mask(tape: &Tape, report: &verify::RangeReport) -> Vec<bool> {
    tape.instrs()
        .iter()
        .enumerate()
        .map(|(i, ins)| {
            let promotable_op = matches!(
                ins,
                Instr::Add { .. }
                    | Instr::Sub { .. }
                    | Instr::Mul { .. }
                    | Instr::Div { .. }
                    | Instr::Neg { .. }
            );
            promotable_op
                && tape
                    .source_node_of(i)
                    .and_then(|n| report.fast_path_safe.get(n).copied())
                    .unwrap_or(false)
        })
        .collect()
}

/// Debug-build guard mirroring [`debug_assert_dataflow_clean`] for the
/// translation layer: panic with a rendered report if the compiled
/// tape fails the `T*` validator. The compiler calls this on every
/// tape it builds (debug builds only), so optimizer or lowering
/// miscompiles abort at compile time instead of computing wrong bits.
#[track_caller]
pub fn debug_assert_tape_clean(tape: &Tape, g: &Cdfg, context: &str) {
    if cfg!(debug_assertions) {
        let diags = verify_tape(tape, g);
        if verify::has_errors(&diags) {
            panic!(
                "{context}: tape translation check failed\n{}",
                verify::render_report(&diags)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::{fuse_critical_paths, FusionConfig};
    use crate::parser::parse_program;
    use crate::sched::{asap_schedule, list_schedule};
    use csfma_verify::{has_errors, Rule};

    const LISTING1: &str = "x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;";

    #[test]
    fn parsed_and_fused_graphs_lint_clean() {
        let g = parse_program(LISTING1).unwrap();
        let t = OpTiming::default();
        assert!(lint_dataflow(&g, &t).is_empty());
        for kind in [FmaKind::Pcs, FmaKind::Fcs] {
            let rep = fuse_critical_paths(&g, &FusionConfig::new(kind));
            let diags = lint_dataflow(&rep.fused, &t);
            assert!(diags.is_empty(), "{}", csfma_verify::render_report(&diags));
        }
    }

    #[test]
    fn schedules_lint_clean_under_their_own_limits() {
        let g = parse_program(LISTING1).unwrap();
        let t = OpTiming::default();
        let unbounded = ResourceLimits::default();
        let s = asap_schedule(&g, &t);
        assert!(lint_schedule(&g, &t, &s, &unbounded).is_empty());

        let limits = ResourceLimits {
            mul: Some(2),
            add: Some(1),
            ..Default::default()
        };
        let ls = list_schedule(&g, &t, &limits);
        let diags = lint_schedule(&g, &t, &ls, &limits);
        assert!(diags.is_empty(), "{}", csfma_verify::render_report(&diags));
    }

    #[test]
    fn asap_schedule_overflows_tight_limits() {
        // Listing 1 starts six multiplies at cycle 0 under ASAP; telling
        // the checker only one multiplier exists must trip S003.
        let g = parse_program(LISTING1).unwrap();
        let t = OpTiming::default();
        let s = asap_schedule(&g, &t);
        let limits = ResourceLimits {
            mul: Some(1),
            ..Default::default()
        };
        let diags = lint_schedule(&g, &t, &s, &limits);
        assert!(has_errors(&diags));
        assert!(diags.iter().any(|d| d.rule == Rule::ResourceOverflow));
    }

    #[test]
    fn conversion_metadata_survives_translation() {
        let g = parse_program(LISTING1).unwrap();
        let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs));
        let cg = to_check_graph(&rep.fused, &OpTiming::default());
        let convs = cg.nodes.iter().filter(|n| n.conv.is_some()).count();
        assert!(convs > 0);
        assert!(cg
            .nodes
            .iter()
            .filter_map(|n| n.conv.as_ref())
            .all(|c| c.unit.contains("PCS")));
    }
}
