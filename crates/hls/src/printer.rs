//! Pretty-printer: render a CDFG back into the straight-line source
//! language of [`crate::parser`]. Fused graphs print with explicit
//! `fma`/conversion pseudo-calls for human inspection; pure IEEE graphs
//! round-trip through the parser (property-tested).

use crate::cdfg::{Cdfg, FmaKind, Op};
use std::fmt::Write as _;

fn kind_tag(k: FmaKind) -> &'static str {
    match k {
        FmaKind::Pcs => "pcs",
        FmaKind::Fcs => "fcs",
    }
}

/// Render the graph as one statement per non-trivial node.
///
/// IEEE-only graphs use exactly the parser grammar; graphs containing
/// fused nodes additionally use `fma_pcs(a, b, c)`-style pseudo-calls
/// (not re-parseable — they exist for dumps and diffs).
pub fn to_source(g: &Cdfg) -> String {
    let mut out = String::new();
    let mut names: Vec<String> = Vec::with_capacity(g.len());
    let mut tmp = 0usize;
    for (id, n) in g.nodes().iter().enumerate() {
        let arg = |k: usize| names[n.args[k]].clone();
        let (name, rhs) = match &n.op {
            Op::Input(name) => (name.clone(), None),
            Op::Const(v) => {
                let mut t = format!("{v:?}");
                if !t.contains('.') && !t.contains('e') {
                    t.push_str(".0");
                }
                (t, None)
            }
            Op::Add => (fresh(&mut tmp), Some(format!("{} + {}", arg(0), arg(1)))),
            Op::Sub => (fresh(&mut tmp), Some(format!("{} - {}", arg(0), arg(1)))),
            Op::Mul => (fresh(&mut tmp), Some(format!("{} * {}", arg(0), arg(1)))),
            Op::Div => (fresh(&mut tmp), Some(format!("{} / {}", arg(0), arg(1)))),
            Op::Neg => (fresh(&mut tmp), Some(format!("-{}", arg(0)))),
            Op::Fma { kind, negate_b } => (
                fresh(&mut tmp),
                Some(format!(
                    "fma_{}({}, {}{}, {})",
                    kind_tag(*kind),
                    arg(0),
                    if *negate_b { "-" } else { "" },
                    arg(1),
                    arg(2)
                )),
            ),
            Op::IeeeToCs(k) => (
                fresh(&mut tmp),
                Some(format!("to_cs_{}({})", kind_tag(*k), arg(0))),
            ),
            Op::CsToIeee(k) => (
                fresh(&mut tmp),
                Some(format!("from_cs_{}({})", kind_tag(*k), arg(0))),
            ),
            Op::Output(name) => {
                let _ = writeln!(out, "out {} = {};", name, arg(0));
                names.push(name.clone());
                continue;
            }
        };
        if let Some(rhs) = rhs {
            let _ = writeln!(out, "{name} = {rhs};");
        }
        names.push(name);
        let _ = id;
    }
    out
}

fn fresh(tmp: &mut usize) -> String {
    let n = format!("t{tmp}");
    *tmp += 1;
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::eval_f64;
    use crate::parser::parse_program;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn prints_listing1_shape() {
        let g = parse_program("x1 = a*b + c*d; out y = x1 * a;").unwrap();
        let src = to_source(&g);
        assert!(src.contains("a * b"));
        assert!(src.contains("out y ="));
        // the print is itself parseable for IEEE graphs
        let g2 = parse_program(&src).unwrap();
        let ins: HashMap<String, f64> = [("a", 2.0), ("b", 3.0), ("c", 4.0), ("d", 5.0)]
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        assert_eq!(eval_f64(&g, &ins)["y"], eval_f64(&g2, &ins)["y"]);
    }

    #[test]
    fn fused_graphs_print_pseudocalls() {
        use crate::cdfg::FmaKind;
        use crate::fuse::{fuse_critical_paths, FusionConfig};
        let g = parse_program("m = a*b; out y = c + m;").unwrap();
        let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs));
        let src = to_source(&rep.fused);
        assert!(src.contains("fma_fcs("), "{src}");
        assert!(src.contains("to_cs_fcs("));
        assert!(src.contains("from_cs_fcs("));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// print -> parse round-trip preserves semantics on IEEE graphs.
        #[test]
        fn prop_print_parse_roundtrip(
            ops in prop::collection::vec((0usize..4, 0usize..16, 0usize..16), 2..20),
            vals in prop::collection::vec(0.25f64..4.0, 4),
        ) {
            let mut g = crate::cdfg::Cdfg::new();
            let mut pool: Vec<crate::cdfg::NodeId> =
                (0..4).map(|i| g.input(format!("v{i}"))).collect();
            for &(op, i1, i2) in &ops {
                let x = pool[i1 % pool.len()];
                let y = pool[i2 % pool.len()];
                pool.push(match op {
                    0 => g.add(x, y),
                    1 => g.sub(x, y),
                    2 => g.mul(x, y),
                    _ => g.div(x, y),
                });
            }
            g.output("y", *pool.last().unwrap());
            let src = to_source(&g);
            let g2 = parse_program(&src).unwrap();
            let ins: HashMap<String, f64> =
                vals.iter().enumerate().map(|(i, v)| (format!("v{i}"), *v)).collect();
            let a = eval_f64(&g, &ins)["y"];
            let b = eval_f64(&g2, &ins)["y"];
            if a.is_nan() {
                prop_assert!(b.is_nan());
            } else {
                prop_assert_eq!(a, b);
            }
        }
    }
}
