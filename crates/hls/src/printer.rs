//! Pretty-printer: render a CDFG back into the straight-line source
//! language of [`crate::parser`]. Fused graphs print with explicit
//! `fma`/conversion pseudo-calls for human inspection; pure IEEE graphs
//! round-trip through the parser (property-tested).

use crate::cdfg::{Cdfg, FmaKind, Op};
use csfma_verify::RangeDecl;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

fn kind_tag(k: FmaKind) -> &'static str {
    match k {
        FmaKind::Pcs => "pcs",
        FmaKind::Fcs => "fcs",
    }
}

/// Render the graph as one statement per non-trivial node.
///
/// IEEE-only graphs use exactly the parser grammar; graphs containing
/// fused nodes additionally use `fma_pcs(a, b, c)`-style pseudo-calls
/// (not re-parseable — they exist for dumps and diffs).
pub fn to_source(g: &Cdfg) -> String {
    to_source_with_ranges(g, &[])
}

/// [`to_source`] with `in a [lo, hi];` bound declarations re-emitted.
/// Whenever `decls` is non-empty the print leads with an explicit `in`
/// header (bounds are only expressible there), so
/// [`parse_program_with_ranges`](crate::parser::parse_program_with_ranges)
/// round-trips both the graph and the declarations. Declarations naming
/// no input of `g` are ignored.
pub fn to_source_with_ranges(g: &Cdfg, decls: &[RangeDecl]) -> String {
    // fresh temporaries must not shadow a source-level name: a program
    // whose *input* is literally called `t0` would otherwise reparse
    // with the temporary captured by the rebound assignment — silently
    // different dataflow (found by the parser_round_trip fuzz target)
    let taken: HashSet<&str> = g
        .nodes()
        .iter()
        .filter_map(|n| match &n.op {
            Op::Input(name) | Op::Output(name) => Some(name.as_str()),
            _ => None,
        })
        .collect();
    let mut out = String::new();
    // an input with no users is invisible in expression form — the only
    // way to keep it in the signature is an explicit `in` declaration
    // (which reparses in strict mode, so every input must then be
    // listed; found by the parser_round_trip fuzz target)
    let users = g.users();
    let inputs: Vec<&str> = g
        .nodes()
        .iter()
        .filter_map(|n| match &n.op {
            Op::Input(name) => Some(name.as_str()),
            _ => None,
        })
        .collect();
    let has_unused_input = g
        .nodes()
        .iter()
        .enumerate()
        .any(|(id, n)| matches!(n.op, Op::Input(_)) && users[id].is_empty());
    let bounds: HashMap<&str, &RangeDecl> = decls
        .iter()
        .filter(|d| inputs.contains(&d.name.as_str()))
        .map(|d| (d.name.as_str(), d))
        .collect();
    if has_unused_input || !bounds.is_empty() {
        let decl_list: Vec<String> = inputs
            .iter()
            .map(|name| match bounds.get(name) {
                Some(d) => format!("{name} [{}, {}]", literal(d.lo), literal(d.hi)),
                None => name.to_string(),
            })
            .collect();
        let _ = writeln!(out, "in {};", decl_list.join(", "));
    }
    let mut names: Vec<String> = Vec::with_capacity(g.len());
    let mut tmp = 0usize;
    for (id, n) in g.nodes().iter().enumerate() {
        let arg = |k: usize| names[n.args[k]].clone();
        let (name, rhs) = match &n.op {
            Op::Input(name) => (name.clone(), None),
            Op::Const(v) => (literal(*v), None),
            Op::Add => (
                fresh(&mut tmp, &taken),
                Some(format!("{} + {}", arg(0), arg(1))),
            ),
            Op::Sub => (
                fresh(&mut tmp, &taken),
                Some(format!("{} - {}", arg(0), arg(1))),
            ),
            Op::Mul => (
                fresh(&mut tmp, &taken),
                Some(format!("{} * {}", arg(0), arg(1))),
            ),
            Op::Div => (
                fresh(&mut tmp, &taken),
                Some(format!("{} / {}", arg(0), arg(1))),
            ),
            Op::Neg => (fresh(&mut tmp, &taken), Some(format!("-{}", arg(0)))),
            Op::Fma { kind, negate_b } => (
                fresh(&mut tmp, &taken),
                Some(format!(
                    "fma_{}({}, {}{}, {})",
                    kind_tag(*kind),
                    arg(0),
                    if *negate_b { "-" } else { "" },
                    arg(1),
                    arg(2)
                )),
            ),
            Op::IeeeToCs(k) => (
                fresh(&mut tmp, &taken),
                Some(format!("to_cs_{}({})", kind_tag(*k), arg(0))),
            ),
            Op::CsToIeee(k) => (
                fresh(&mut tmp, &taken),
                Some(format!("from_cs_{}({})", kind_tag(*k), arg(0))),
            ),
            Op::Output(name) => {
                let _ = writeln!(out, "out {} = {};", name, arg(0));
                names.push(name.clone());
                continue;
            }
        };
        if let Some(rhs) = rhs {
            let _ = writeln!(out, "{name} = {rhs};");
        }
        names.push(name);
        let _ = id;
    }
    out
}

/// Render `v` as a literal the tokenizer reads back bit-exactly.
/// Overflowing literals (`1e999`) parse to infinities, so infinities
/// must print back as overflowing literals — `{v:?}` gives `inf`,
/// which reads as an identifier.
fn literal(v: f64) -> String {
    let mut t = if v.is_infinite() {
        if v.is_sign_positive() {
            "1e999"
        } else {
            "-1e999"
        }
        .to_string()
    } else {
        format!("{v:?}")
    };
    if !t.contains('.') && !t.contains('e') {
        t.push_str(".0");
    }
    t
}

fn fresh(tmp: &mut usize, taken: &HashSet<&str>) -> String {
    loop {
        let n = format!("t{tmp}");
        *tmp += 1;
        if !taken.contains(n.as_str()) {
            return n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::eval_f64;
    use crate::parser::parse_program;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn prints_listing1_shape() {
        let g = parse_program("x1 = a*b + c*d; out y = x1 * a;").unwrap();
        let src = to_source(&g);
        assert!(src.contains("a * b"));
        assert!(src.contains("out y ="));
        // the print is itself parseable for IEEE graphs
        let g2 = parse_program(&src).unwrap();
        let ins: HashMap<String, f64> = [("a", 2.0), ("b", 3.0), ("c", 4.0), ("d", 5.0)]
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        assert_eq!(eval_f64(&g, &ins)["y"], eval_f64(&g2, &ins)["y"]);
    }

    #[test]
    fn fused_graphs_print_pseudocalls() {
        use crate::cdfg::FmaKind;
        use crate::fuse::{fuse_critical_paths, FusionConfig};
        let g = parse_program("m = a*b; out y = c + m;").unwrap();
        let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs));
        let src = to_source(&rep.fused);
        assert!(src.contains("fma_fcs("), "{src}");
        assert!(src.contains("to_cs_fcs("));
        assert!(src.contains("from_cs_fcs("));
    }

    #[test]
    fn temp_names_dodge_source_identifiers() {
        // fuzz regression: an input literally named `t0` used to be
        // shadowed by the printer's first temporary, so the reparse
        // bound later uses of `t0` to the temporary instead of the input
        let g = parse_program("q = t0 + b; out y = q * t0;").unwrap();
        let src = to_source(&g);
        let g2 = parse_program(&src).unwrap();
        let ins: HashMap<String, f64> = [("t0", 3.0), ("b", 5.0)]
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        // (t0 + b) * t0 = 24, not (t0 + b)^2 = 64
        assert_eq!(eval_f64(&g, &ins)["y"], 24.0);
        assert_eq!(eval_f64(&g2, &ins)["y"], 24.0, "print:\n{src}");
    }

    #[test]
    fn unused_declared_inputs_survive_via_in_header() {
        // fuzz regression: an input with no users has no expression to
        // appear in, so the print dropped it from the signature
        let g = parse_program("in a, b, unused;\nout y = a * b;").unwrap();
        let src = to_source(&g);
        assert!(src.starts_with("in a, b, unused;"), "{src}");
        let g2 = parse_program(&src).unwrap();
        let count = |g: &Cdfg| g.count_ops(|op| matches!(op, Op::Input(_)));
        assert_eq!(count(&g), 3);
        assert_eq!(count(&g2), 3, "{src}");
        // fully-used signatures keep the legacy declaration-free print
        let g = parse_program("out y = a * b;").unwrap();
        assert!(!to_source(&g).contains("in "), "{}", to_source(&g));
    }

    #[test]
    fn range_declarations_round_trip_through_print() {
        use crate::parser::parse_program_with_ranges;
        let (g, ranges) =
            parse_program_with_ranges("in a [0.5, 2.0], b [-1e3, 1e3];\nout y = a * b;").unwrap();
        let src = to_source_with_ranges(&g, &ranges);
        assert!(
            src.starts_with("in a [0.5, 2.0], b [-1000.0, 1000.0];"),
            "{src}"
        );
        let (g2, ranges2) = parse_program_with_ranges(&src).unwrap();
        assert_eq!(g.len(), g2.len());
        assert_eq!(ranges.len(), ranges2.len());
        for (a, b) in ranges.iter().zip(&ranges2) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.lo.to_bits(), b.lo.to_bits());
            assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        }
        // decls naming no input are dropped, not invented
        let stray = [csfma_verify::RangeDecl {
            name: "zz".into(),
            lo: 0.0,
            hi: 1.0,
        }];
        assert!(!to_source_with_ranges(&g, &stray).contains("zz"));
    }

    #[test]
    fn infinite_constants_reprint_as_overflowing_literals() {
        // fuzz regression: `1e999` parses to +inf, which `{v:?}` prints
        // as the identifier-looking token `inf` — not reparseable
        let g = parse_program("out y = a + 1e999; out z = a - -1e999;").unwrap();
        let src = to_source(&g);
        let g2 = parse_program(&src).unwrap_or_else(|e| panic!("reparse failed: {e}\n{src}"));
        let ins: HashMap<String, f64> = [("a".to_string(), 1.0)].into_iter().collect();
        let want = eval_f64(&g, &ins);
        let got = eval_f64(&g2, &ins);
        assert_eq!(want["y"].to_bits(), got["y"].to_bits());
        assert_eq!(want["z"].to_bits(), got["z"].to_bits());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// print -> parse round-trip preserves semantics on IEEE graphs.
        #[test]
        fn prop_print_parse_roundtrip(
            ops in prop::collection::vec((0usize..4, 0usize..16, 0usize..16), 2..20),
            vals in prop::collection::vec(0.25f64..4.0, 4),
        ) {
            let mut g = crate::cdfg::Cdfg::new();
            let mut pool: Vec<crate::cdfg::NodeId> =
                (0..4).map(|i| g.input(format!("v{i}"))).collect();
            for &(op, i1, i2) in &ops {
                let x = pool[i1 % pool.len()];
                let y = pool[i2 % pool.len()];
                pool.push(match op {
                    0 => g.add(x, y),
                    1 => g.sub(x, y),
                    2 => g.mul(x, y),
                    _ => g.div(x, y),
                });
            }
            g.output("y", *pool.last().unwrap());
            let src = to_source(&g);
            let g2 = parse_program(&src).unwrap();
            let ins: HashMap<String, f64> =
                vals.iter().enumerate().map(|(i, v)| (format!("v{i}"), *v)).collect();
            let a = eval_f64(&g, &ins)["y"];
            let b = eval_f64(&g2, &ins)["y"];
            if a.is_nan() {
                prop_assert!(b.is_nan());
            } else {
                prop_assert_eq!(a, b);
            }
        }
    }
}
