//! Pipeline observability: the glue between the engine and `csfma-obs`.
//!
//! Every `*_profiled` entry point in this crate
//! ([`compile_with_options_profiled`](crate::compile_with_options_profiled),
//! [`Tape::eval_batch_profiled`](crate::Tape::eval_batch_profiled),
//! [`Tape::eval_batch_robust_profiled`](crate::Tape::eval_batch_robust_profiled))
//! takes a `&mut` [`Profiler`] and records hierarchical stage spans
//! (`compile` → `gate`/`optimize`/`lower`, `eval`) plus counters; the
//! caller finishes the profiler into a [`PipelineReport`]. The
//! non-profiled entry points delegate to the profiled ones with
//! [`Profiler::disabled`], so there is exactly one code path and the
//! byte-identity contract (`tests/observability.rs`) holds by
//! construction.
//!
//! This module also owns the process-wide executor counters that are too
//! hot to thread a profiler through: hosted-FPU op totals (tallied once
//! per instruction per chunk, not per lane) and the SoA chunk-occupancy
//! histogram (one record per chunk).

use crate::compile::Instr;
use csfma_obs::{Counter, Histogram};

pub use csfma_obs::{PipelineReport, Profiler, SpanToken, StageRecord};

/// Hosted-FPU-eligible scalar ops (add/sub/mul/div/neg) executed by the
/// bit-accurate backend. Together with
/// [`csfma_softfloat::batch::softfloat_fallbacks`] this gives the
/// fast-path hit rate: `1 - fallbacks / hosted_ops`.
static HOSTED_OPS: Counter = Counter::new();

/// SoA chunk occupancy by decile of `CHUNK_ROWS`: bucket 9 is a full
/// chunk, lower buckets are the ragged tail of a batch.
static CHUNK_OCCUPANCY: Histogram<10> = Histogram::new();

/// Process-wide hosted-FPU-eligible op total (see [`hosted_ops`]
/// internals; `0` when the `obs` feature is compiled out).
pub fn hosted_ops() -> u64 {
    HOSTED_OPS.get()
}

/// Snapshot of the SoA chunk-occupancy histogram: bucket `i` counts
/// chunks with occupancy in `[i*10%, (i+1)*10%)` of `CHUNK_ROWS`
/// (bucket 9 includes exactly-full chunks).
pub fn chunk_occupancy() -> [u64; 10] {
    CHUNK_OCCUPANCY.snapshot()
}

/// Tally the hosted-FPU-eligible work of one chunk: one atomic add per
/// chunk covering `lanes` rows across every scalar IEEE instruction.
#[inline]
pub(crate) fn count_hosted_chunk(instrs: &[Instr], lanes: usize) {
    if !cfg!(feature = "obs") {
        return;
    }
    let scalar_ops = instrs
        .iter()
        .filter(|i| {
            matches!(
                i,
                Instr::Add { .. }
                    | Instr::Sub { .. }
                    | Instr::Mul { .. }
                    | Instr::Div { .. }
                    | Instr::Neg { .. }
            )
        })
        .count();
    HOSTED_OPS.add((scalar_ops * lanes) as u64);
}

/// Record one chunk's occupancy (`lanes` of `capacity` rows used).
#[inline]
pub(crate) fn record_chunk_occupancy(lanes: usize, capacity: usize) {
    if !cfg!(feature = "obs") {
        return;
    }
    CHUNK_OCCUPANCY.record(lanes * 10 / capacity.max(1));
}

// JIT tallies, incremented per chunk by the `TapeBackend::Jit` executor
// and once per module build. `jit_bailouts <= jit_rows` always; the
// bailout *rate* is what the J001 advisory (docs/DIAGNOSTICS.md) and
// `csfma-run --backend jit` report on.
static JIT_ROWS: Counter = Counter::new();
static JIT_BAILOUTS: Counter = Counter::new();
static JIT_COMPILE_US: Counter = Counter::new();

/// Rows dispatched to the native JIT path process-wide (`0` when the
/// `obs` feature is compiled out). Includes rows that subsequently
/// bailed, and rows evaluated on the interpreter because no module
/// could be built (those all count as bailouts too).
pub fn jit_rows() -> u64 {
    JIT_ROWS.get()
}

/// Rows the JIT path handed back to the interpreter: a guard fired, or
/// no native module exists for the tape (`0` when the `obs` feature is
/// compiled out).
pub fn jit_bailouts() -> u64 {
    JIT_BAILOUTS.get()
}

/// Cumulative wall time spent building JIT modules, microseconds (`0`
/// when the `obs` feature is compiled out).
pub fn jit_compile_us() -> u64 {
    JIT_COMPILE_US.get()
}

/// Tally one JIT chunk's outcome (called by the worker that ran it).
#[inline]
pub(crate) fn count_jit_chunk(rows: u64, bailouts: u64) {
    if !cfg!(feature = "obs") {
        return;
    }
    JIT_ROWS.add(rows);
    JIT_BAILOUTS.add(bailouts);
}

/// Tally one JIT module build's wall time.
#[inline]
pub(crate) fn count_jit_compile_us(us: u64) {
    if !cfg!(feature = "obs") {
        return;
    }
    JIT_COMPILE_US.add(us);
}

// Robust-executor tallies, incremented inside `robust_chunk` — i.e. on
// whichever stealing worker actually ran the chunk — so the counters
// follow the work through the scheduler rather than being derived from
// the merged report afterwards. `tests/scheduler.rs` asserts the two
// views agree under stealing.
static ROBUST_DETECTIONS: Counter = Counter::new();
static ROBUST_ROWS_RECOVERED: Counter = Counter::new();
static ROBUST_ROWS_QUARANTINED: Counter = Counter::new();

/// Snapshot of the robust executor's process-wide fault tallies (all
/// zeros when the `obs` feature is compiled out). Unlike the per-call
/// [`BatchReport`](crate::BatchReport), these accumulate across every
/// `eval_batch_robust` call in the process and are recorded on the
/// worker that executed each chunk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RobustCounts {
    /// Self-check detections across all ladder rungs.
    pub detections: u64,
    /// Rows recovered by a fallback rung.
    pub rows_recovered: u64,
    /// Rows quarantined (every rung failed).
    pub rows_quarantined: u64,
}

/// Read the process-wide robust-executor counters.
pub fn robust_counts() -> RobustCounts {
    RobustCounts {
        detections: ROBUST_DETECTIONS.get(),
        rows_recovered: ROBUST_ROWS_RECOVERED.get(),
        rows_quarantined: ROBUST_ROWS_QUARANTINED.get(),
    }
}

/// Tally one robust chunk's outcome counts (called by the worker that
/// ran the chunk).
#[inline]
pub(crate) fn count_robust_chunk(detections: u64, recovered: u64, quarantined: u64) {
    if !cfg!(feature = "obs") {
        return;
    }
    ROBUST_DETECTIONS.add(detections);
    ROBUST_ROWS_RECOVERED.add(recovered);
    ROBUST_ROWS_QUARANTINED.add(quarantined);
}
