//! Named tape corruptions for validator testing.
//!
//! Each mutation simulates one concrete miscompilation class — a
//! register-allocator slot mix-up, a dropped store, a provenance table
//! gone stale — by corrupting a *correct* compiled [`Tape`] in place.
//! The `T*` translation rules (`csfma-verify`'s [`check_tape`]) must
//! flag every one of them; the mutation tests and the
//! `tests/filetests/` corpus assert exactly which rule fires. Mutations
//! are deliberately tiny (one field, one instruction) so a validator
//! that catches them catches the underlying bug class, not just a
//! mangled tape.
//!
//! [`check_tape`]: csfma_verify::check_tape

use crate::compile::{Instr, Tape};
use crate::FmaKind;

/// Every mutation name [`apply_mutation`] understands, with the `T*`
/// rule its detection is pinned to in `docs/DIAGNOSTICS.md`.
pub const ALL_MUTATIONS: &[(&str, &str)] = &[
    ("drop-def", "T001"),
    ("clobber-slot", "T005"),
    ("retarget-provenance", "T002"),
    ("truncate-provenance", "T002"),
    ("flip-fma-negate", "T002"),
    ("swap-inputs", "T003"),
    ("swap-outputs", "T003"),
    ("drop-store", "T003"),
    ("dup-store", "T003"),
    ("mistag-cs", "T004"),
    ("swap-operands", "T005"),
    ("swap-fma-operands", "T005"),
    ("corrupt-const", "T006"),
];

/// Apply the named corruption to `tape` in place. Returns `false` when
/// the tape has no site for the mutation (e.g. `mistag-cs` on a tape
/// with no fused instructions) — the tape is then unchanged.
///
/// # Panics
/// On an unknown mutation name, listing the valid ones.
pub fn apply_mutation(tape: &mut Tape, name: &str) -> bool {
    match name {
        // Remove the first non-Store definition: every later read of
        // its slot is a read of an uninitialized register (T001).
        "drop-def" => {
            let Some(i) = tape
                .instrs
                .iter()
                .position(|ins| !matches!(ins, Instr::Store { .. }))
            else {
                return false;
            };
            tape.instrs.remove(i);
            tape.instr_nodes.remove(i);
            true
        }
        // Redirect the second f64 definition into the first one's slot:
        // the clobbered value's consumers now read the wrong ancestry
        // (T005) — the classic linear-scan double-allocation bug.
        "clobber-slot" => {
            let mut first: Option<u32> = None;
            for ins in &mut tape.instrs {
                let dst = match ins {
                    Instr::LoadInput { dst, .. }
                    | Instr::LoadConst { dst, .. }
                    | Instr::Add { dst, .. }
                    | Instr::Sub { dst, .. }
                    | Instr::Mul { dst, .. }
                    | Instr::Div { dst, .. }
                    | Instr::Neg { dst, .. }
                    | Instr::CsToIeee { dst, .. } => dst,
                    _ => continue,
                };
                match first {
                    None => first = Some(*dst),
                    Some(f) if *dst != f => {
                        *dst = f;
                        return true;
                    }
                    Some(_) => {}
                }
            }
            false
        }
        // Point an arithmetic instruction's provenance at source node 0
        // (an Input in every parsed program): the instruction no longer
        // descends from a node of its own operation class (T002).
        "retarget-provenance" => {
            for (i, ins) in tape.instrs.iter().enumerate() {
                if matches!(
                    ins,
                    Instr::Add { .. }
                        | Instr::Sub { .. }
                        | Instr::Mul { .. }
                        | Instr::Div { .. }
                        | Instr::Fma { .. }
                ) && tape.instr_nodes[i] != 0
                {
                    tape.instr_nodes[i] = 0;
                    return true;
                }
            }
            false
        }
        // Drop the last provenance entry: the table no longer covers
        // the instruction stream (T002).
        "truncate-provenance" => tape.instr_nodes.pop().is_some(),
        // Toggle a fused multiply-add's `negate_b` flag: the
        // instruction computes `acc - b*c` where the source fused
        // `acc + b*c` (T002 — the constructor payload disagrees).
        "flip-fma-negate" => {
            for ins in &mut tape.instrs {
                if let Instr::Fma { negate_b, .. } = ins {
                    *negate_b = !*negate_b;
                    return true;
                }
            }
            false
        }
        // Swap the first two positional input names: every batch row
        // now feeds values to the wrong operands (T003).
        "swap-inputs" => {
            if tape.inputs.len() < 2 {
                return false;
            }
            tape.inputs.swap(0, 1);
            true
        }
        // Swap the first two positional output names (T003).
        "swap-outputs" => {
            if tape.outputs.len() < 2 {
                return false;
            }
            tape.outputs.swap(0, 1);
            true
        }
        // Delete the first Store: its output row column is never
        // written (T003).
        "drop-store" => {
            let Some(i) = tape
                .instrs
                .iter()
                .position(|ins| matches!(ins, Instr::Store { .. }))
            else {
                return false;
            };
            tape.instrs.remove(i);
            tape.instr_nodes.remove(i);
            true
        }
        // Append a second Store to output 0: one column is written
        // twice, the schedule's single-assignment contract breaks
        // (T003).
        "dup-store" => {
            let Some(i) = tape
                .instrs
                .iter()
                .position(|ins| matches!(ins, Instr::Store { .. }))
            else {
                return false;
            };
            let ins = tape.instrs[i].clone();
            let node = tape.instr_nodes[i];
            tape.instrs.push(ins);
            tape.instr_nodes.push(node);
            true
        }
        // Flip the carry-save kind tag on the first fused instruction:
        // a PCS value flows into an FCS consumer or vice versa (T004).
        "mistag-cs" => {
            for ins in &mut tape.instrs {
                let kind = match ins {
                    Instr::Fma { kind, .. } | Instr::IeeeToCs { kind, .. } => kind,
                    _ => continue,
                };
                *kind = match *kind {
                    FmaKind::Pcs => FmaKind::Fcs,
                    FmaKind::Fcs => FmaKind::Pcs,
                };
                return true;
            }
            false
        }
        // Swap the operand slots of the first non-commutative-safe
        // binary instruction whose operands differ: the left operand
        // carries the right operand's ancestry (T005).
        "swap-operands" => {
            for ins in &mut tape.instrs {
                let (a, b) = match ins {
                    Instr::Add { a, b, .. }
                    | Instr::Sub { a, b, .. }
                    | Instr::Mul { a, b, .. }
                    | Instr::Div { a, b, .. } => (a, b),
                    _ => continue,
                };
                if a != b {
                    std::mem::swap(a, b);
                    return true;
                }
            }
            false
        }
        // Swap a fused instruction's accumulator and multiplicand
        // slots (both in the carry-save bank): `acc + b*c` becomes
        // `c + b*acc` (T005).
        "swap-fma-operands" => {
            for ins in &mut tape.instrs {
                if let Instr::Fma { acc, mulc, .. } = ins {
                    if acc != mulc {
                        std::mem::swap(acc, mulc);
                        return true;
                    }
                }
            }
            false
        }
        // Flip the low mantissa bit of constant-pool entry 0: the pool
        // no longer matches what the folded subtree evaluates to
        // (T006).
        "corrupt-const" => {
            let Some(c) = tape.consts.first_mut() else {
                return false;
            };
            *c = f64::from_bits(c.to_bits() ^ 1);
            true
        }
        other => panic!(
            "unknown mutation {other:?}; valid names: {:?}",
            ALL_MUTATIONS.iter().map(|(n, _)| *n).collect::<Vec<_>>()
        ),
    }
}
