//! Post-gate tape optimizer: constant folding, common-subexpression
//! elimination over the canonical node encoding, dead-node elimination
//! and slot-pressure-aware reordering.
//!
//! [`compile`](crate::compile::compile) runs this pipeline **after** the
//! `D*`/`S*`/`W*` checker gate, so an optimized tape is always derived
//! from a graph the checker accepted, and the optimizer re-validates its
//! own result — optimized tapes stay checker-clean by construction.
//!
//! Every rewrite must preserve **both** tape backends bit-for-bit
//! simultaneously (`TapeBackend::F64` evaluates host doubles on the raw
//! constant pool; `TapeBackend::BitAccurate` evaluates the guarded
//! soft-float fast path on canonicalized values):
//!
//! * **Constant folding** only fires when the operand bit patterns are
//!   canonical FTZ doubles (so both backends agree on the *inputs*) and
//!   the host result is bit-identical to the hosted soft-float result
//!   (so both backends agree on the *output*). NaN-producing folds
//!   (`0 * inf`, `0/0`) and flush-to-zero boundary results fail that
//!   comparison and stay in the tape. Algebraic identities (`x * 1.0`)
//!   are never applied — they can change NaN payloads on the f64 backend.
//! * **CSE** merges nodes whose canonical encodings (operation tag,
//!   constant bits, input name, FMA kind/negation, remapped argument
//!   ids) are byte-equal. Argument order is *not* commuted: `a + b` and
//!   `b + a` differ bitwise when both operands are NaN payloads.
//! * **Dead-node elimination** drops nodes no output depends on but
//!   keeps every `Input` node, so the positional input layout of the
//!   optimized tape is byte-compatible with the unoptimized one.
//! * **Reordering** list-schedules the graph so values die close to
//!   their birth (greedy minimum register-pressure delta). Execution
//!   order of pure operators cannot change any row's value; it only
//!   changes how many slots the linear-scan allocator needs. `Input`
//!   nodes keep their relative order (positional input layout) and so do
//!   `Output` nodes (positional output layout).

use crate::cdfg::{Cdfg, FmaKind, NodeId, Op};
use csfma_softfloat::batch as sfb;
use std::collections::HashMap;

/// What the optimizer did to a graph, recorded on the compiled tape for
/// benchmark attribution (`bench::throughput` emits these).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OptStats {
    /// Node count before optimization.
    pub nodes_before: usize,
    /// Node count after optimization.
    pub nodes_after: usize,
    /// Nodes replaced by a folded constant.
    pub consts_folded: usize,
    /// Nodes merged into an identical earlier node.
    pub cse_merged: usize,
    /// Dead (non-input) nodes removed.
    pub dead_removed: usize,
    /// Tape instructions removed by dead-slot elimination after lowering.
    pub dead_slots_removed: usize,
    /// Register slots the linear-scan allocator reused from the free
    /// list during lowering (each reuse is one slot of peak pressure
    /// avoided; the `T001`/`T005` tape rules prove every reuse safe).
    pub slots_reclaimed: usize,
    /// Wall time spent optimizing, microseconds.
    pub optimize_us: f64,
    /// Tape-cache hits at the moment this tape was compiled and cached.
    pub cache_hits: u64,
    /// Tape-cache misses at the moment this tape was compiled and cached.
    pub cache_misses: u64,
    /// Tape-cache LRU evictions at the moment this tape was compiled.
    pub cache_evictions: u64,
}

/// Run the full post-gate pipeline: fold + CSE + DCE to a bounded
/// fixpoint, then one pressure-aware reorder. The input graph must be
/// checker-clean; the output graph is re-validated.
///
/// The third return value is the provenance map: for each node of the
/// optimized graph, the id of the *source-graph* node it descends from
/// (the CSE representative's creator for merged nodes). The compiler
/// threads it onto the tape so executor diagnostics — in particular
/// quarantined rows in the robust batch path — can name the offending
/// source node.
pub(crate) fn optimize_graph(g: &Cdfg) -> (Cdfg, OptStats, Vec<u32>) {
    let mut stats = OptStats {
        nodes_before: g.len(),
        ..Default::default()
    };
    let mut cur = g.clone();
    // origin[new_id] = source-graph id, composed across every pass
    let mut origin: Vec<u32> = (0..g.len() as u32).collect();
    let compose = |origin: &[u32], map: &[NodeId], new_len: usize| -> Vec<u32> {
        let mut next = vec![u32::MAX; new_len];
        for (old, &new) in map.iter().enumerate() {
            if new != usize::MAX && next[new] == u32::MAX {
                next[new] = origin[old];
            }
        }
        next
    };
    for _ in 0..8 {
        let (next, folded, merged, map) = fold_and_cse(&cur);
        origin = compose(&origin, &map, next.len());
        let (next, removed, map) = eliminate_dead_keep_inputs(&next);
        if let Some(map) = map {
            origin = compose(&origin, &map, next.len());
        }
        stats.consts_folded += folded;
        stats.cse_merged += merged;
        stats.dead_removed += removed;
        cur = next;
        if folded == 0 && merged == 0 && removed == 0 {
            break;
        }
    }
    let (cur, map) = reorder_for_pressure(&cur);
    let origin = compose(&origin, &map, cur.len());
    // post-gate invariant: the optimized graph must still be checker-clean
    cur.validate();
    crate::lint::debug_assert_dataflow_clean(
        &cur,
        &crate::sched::OpTiming::default(),
        "post-gate optimizer result",
    );
    stats.nodes_after = cur.len();
    debug_assert!(origin.iter().all(|&o| (o as usize) < g.len()));
    (cur, stats, origin)
}

/// True when `v`'s bit pattern is a canonical FTZ double — the domain on
/// which the f64 and bit-accurate backends see the same value.
fn is_canonical(v: f64) -> bool {
    v.to_bits() == sfb::canonicalize(v).to_bits()
}

fn const_of(g: &Cdfg, id: NodeId) -> Option<f64> {
    match g.nodes()[id].op {
        Op::Const(v) => Some(v),
        _ => None,
    }
}

/// Try to fold an all-constant node. Returns the folded value only when
/// replacing the computation with a `Const` preserves both backends
/// bit-for-bit (see module docs for the argument).
fn try_fold(out: &Cdfg, op: &Op, args: &[NodeId]) -> Option<f64> {
    let (plain, hosted) = match op {
        Op::Add | Op::Sub | Op::Mul | Op::Div => {
            let a = const_of(out, args[0])?;
            let b = const_of(out, args[1])?;
            if !is_canonical(a) || !is_canonical(b) {
                return None;
            }
            match op {
                Op::Add => (a + b, sfb::hosted_add(a, b)),
                Op::Sub => (a - b, sfb::hosted_sub(a, b)),
                Op::Mul => (a * b, sfb::hosted_mul(a, b)),
                _ => (a / b, sfb::hosted_div(a, b)),
            }
        }
        Op::Neg => {
            let a = const_of(out, args[0])?;
            if !is_canonical(a) {
                return None;
            }
            (-a, sfb::hosted_neg(a))
        }
        _ => return None,
    };
    (plain.to_bits() == hosted.to_bits()).then_some(plain)
}

/// The canonical encoding of one (rewritten) node — the CSE identity.
/// Mirrors `compile::canonical_encoding`, with argument ids already
/// remapped into the output graph.
fn node_key(op: &Op, args: &[NodeId]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 4 * args.len());
    let kind_tag = |k: FmaKind| match k {
        FmaKind::Pcs => 0u8,
        FmaKind::Fcs => 1u8,
    };
    match op {
        Op::Input(name) => {
            buf.push(0);
            buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        }
        Op::Const(v) => {
            buf.push(1);
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Op::Add => buf.push(2),
        Op::Sub => buf.push(3),
        Op::Mul => buf.push(4),
        Op::Div => buf.push(5),
        Op::Neg => buf.push(6),
        Op::Fma { kind, negate_b } => {
            buf.push(7);
            buf.push(kind_tag(*kind));
            buf.push(*negate_b as u8);
        }
        Op::IeeeToCs(kind) => {
            buf.push(8);
            buf.push(kind_tag(*kind));
        }
        Op::CsToIeee(kind) => {
            buf.push(9);
            buf.push(kind_tag(*kind));
        }
        Op::Output(_) => unreachable!("outputs are never CSE candidates"),
    }
    for &a in args {
        buf.extend_from_slice(&(a as u32).to_le_bytes());
    }
    buf
}

/// One forward rewrite pass: fold all-constant nodes, then merge nodes
/// with byte-equal canonical encodings. Returns the rewritten graph, the
/// (folded, merged) counts, and the old→new node map.
fn fold_and_cse(g: &Cdfg) -> (Cdfg, usize, usize, Vec<NodeId>) {
    let mut out = Cdfg::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(g.len());
    let mut seen: HashMap<Vec<u8>, NodeId> = HashMap::new();
    let (mut folded, mut merged) = (0usize, 0usize);
    for n in g.nodes() {
        let mut args: Vec<NodeId> = n.args.iter().map(|&a| map[a]).collect();
        if let Op::Output(_) = n.op {
            map.push(out.push(n.op.clone(), args));
            continue;
        }
        let op = match try_fold(&out, &n.op, &args) {
            Some(v) => {
                folded += 1;
                args.clear();
                Op::Const(v)
            }
            None => n.op.clone(),
        };
        let key = node_key(&op, &args);
        if let Some(&prev) = seen.get(&key) {
            merged += 1;
            map.push(prev);
            continue;
        }
        let id = out.push(op, args);
        seen.insert(key, id);
        map.push(id);
    }
    (out, folded, merged, map)
}

/// Dead-node elimination rooted at the outputs **and every input**:
/// removing an unused `Input` would change the tape's positional row
/// layout, which must stay byte-compatible with the unoptimized tape.
/// The map is `None` when nothing was removed (identity provenance).
fn eliminate_dead_keep_inputs(g: &Cdfg) -> (Cdfg, usize, Option<Vec<NodeId>>) {
    let mut live = vec![false; g.len()];
    let mut stack: Vec<NodeId> = g.outputs();
    for (id, n) in g.nodes().iter().enumerate() {
        if matches!(n.op, Op::Input(_)) {
            stack.push(id);
        }
    }
    while let Some(id) = stack.pop() {
        if live[id] {
            continue;
        }
        live[id] = true;
        stack.extend(g.nodes()[id].args.iter().copied());
    }
    let removed = live.iter().filter(|&&l| !l).count();
    if removed == 0 {
        return (g.clone(), 0, None);
    }
    let mut map = vec![usize::MAX; g.len()];
    let mut out = Cdfg::new();
    for (id, n) in g.nodes().iter().enumerate() {
        if live[id] {
            let args = n.args.iter().map(|&a| map[a]).collect();
            map[id] = out.push(n.op.clone(), args);
        }
    }
    (out, removed, Some(map))
}

/// Slot-pressure-aware list scheduling: emit ready nodes in the order
/// that greedily minimizes the live-value count the linear-scan
/// allocator will see (an emission frees one slot per dying argument and
/// allocates one for its own result). Deterministic: ties break on the
/// original node id, `Input` nodes keep their relative order and so do
/// `Output` nodes. Also returns the old→new node map.
fn reorder_for_pressure(g: &Cdfg) -> (Cdfg, Vec<NodeId>) {
    let nodes = g.nodes();
    let n = nodes.len();
    // remaining reads of each node's value
    let mut uses = vec![0usize; n];
    for node in nodes {
        for &a in &node.args {
            uses[a] += 1;
        }
    }
    let mut unmet: Vec<usize> = nodes.iter().map(|nd| nd.args.len()).collect();
    let inputs: Vec<NodeId> = (0..n)
        .filter(|&i| matches!(nodes[i].op, Op::Input(_)))
        .collect();
    let outputs: Vec<NodeId> = (0..n)
        .filter(|&i| matches!(nodes[i].op, Op::Output(_)))
        .collect();
    let (mut next_in, mut next_out) = (0usize, 0usize);
    let mut emitted = vec![false; n];
    let mut map = vec![usize::MAX; n];
    let mut out = Cdfg::new();

    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    while order.len() < n {
        // pick the ready node with the best (lowest) pressure delta
        let mut best: Option<(i64, NodeId)> = None;
        for id in 0..n {
            if emitted[id] || unmet[id] != 0 {
                continue;
            }
            match nodes[id].op {
                // positional layouts: only the next input/output may go
                Op::Input(_) if inputs[next_in] != id => continue,
                Op::Output(_) if outputs[next_out] != id => continue,
                _ => {}
            }
            let allocs = i64::from(!matches!(nodes[id].op, Op::Output(_)));
            let mut frees = 0i64;
            // count dying arguments; a double-read (e.g. `x * x`) frees
            // its slot only once
            let args = &nodes[id].args;
            for (k, &a) in args.iter().enumerate() {
                let reads_here = args.iter().filter(|&&b| b == a).count();
                if args[..k].contains(&a) {
                    continue; // counted at its first occurrence
                }
                if uses[a] == reads_here {
                    frees += 1;
                }
            }
            let delta = allocs - frees;
            if best.is_none_or(|(d, _)| delta < d) {
                best = Some((delta, id));
            }
        }
        let (_, id) = best.expect("a checker-clean DAG always has a ready node");
        emitted[id] = true;
        for &a in &nodes[id].args {
            uses[a] -= 1;
        }
        for (uid, u) in nodes.iter().enumerate() {
            if !emitted[uid] {
                unmet[uid] -= u.args.iter().filter(|&&a| a == id).count();
            }
        }
        match nodes[id].op {
            Op::Input(_) => next_in += 1,
            Op::Output(_) => next_out += 1,
            _ => {}
        }
        order.push(id);
    }
    for &id in &order {
        let args = nodes[id].args.iter().map(|&a| map[a]).collect();
        map[id] = out.push(nodes[id].op.clone(), args);
    }
    (out, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{eval_bit_accurate, eval_f64};
    use crate::parse_program;

    fn named_inputs(g: &Cdfg, v: f64) -> HashMap<String, f64> {
        g.nodes()
            .iter()
            .filter_map(|n| match &n.op {
                Op::Input(name) => Some((name.clone(), v)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn folds_safe_constant_subtrees() {
        let g = parse_program("out y = x * (2.0 + 3.0 * 4.0);").unwrap();
        let (opt, stats, _) = optimize_graph(&g);
        assert!(stats.consts_folded >= 2, "{stats:?}");
        assert_eq!(opt.count_ops(|o| matches!(o, Op::Const(_))), 1);
        let ins = named_inputs(&g, 1.5);
        assert_eq!(eval_f64(&g, &ins)["y"], eval_f64(&opt, &ins)["y"]);
    }

    #[test]
    fn never_folds_nan_producing_constants() {
        // 0 * inf: the host produces some NaN, the model the canonical
        // one — folding would pin one backend's pattern into the other
        let mut g = Cdfg::new();
        let z = g.constant(0.0);
        let i = g.constant(f64::INFINITY);
        let m = g.mul(z, i);
        g.output("y", m);
        let (opt, stats, _) = optimize_graph(&g);
        assert_eq!(stats.consts_folded, 0);
        let ins = HashMap::new();
        assert_eq!(
            eval_f64(&g, &ins)["y"].to_bits(),
            eval_f64(&opt, &ins)["y"].to_bits()
        );
        assert_eq!(
            eval_bit_accurate(&g, &ins)["y"].to_bits(),
            eval_bit_accurate(&opt, &ins)["y"].to_bits()
        );
    }

    #[test]
    fn never_folds_non_canonical_operands() {
        // subnormal constant: the two backends disagree on the input
        // value itself (FTZ), so folding must not touch it
        let mut g = Cdfg::new();
        let s = g.constant(f64::MIN_POSITIVE / 2.0);
        let c = g.constant(1.0);
        let m = g.mul(s, c);
        g.output("y", m);
        let (_, stats, _) = optimize_graph(&g);
        assert_eq!(stats.consts_folded, 0);
    }

    #[test]
    fn cse_merges_repeated_subexpressions() {
        let g = parse_program("out y = a*b + a*b;").unwrap();
        let (opt, stats, _) = optimize_graph(&g);
        assert_eq!(stats.cse_merged, 1);
        assert_eq!(opt.count_ops(|o| matches!(o, Op::Mul)), 1);
        let ins = named_inputs(&g, 2.5);
        assert_eq!(eval_f64(&g, &ins)["y"], eval_f64(&opt, &ins)["y"]);
    }

    #[test]
    fn dce_preserves_inputs() {
        // `dead` never reaches the output but its inputs must survive so
        // the positional row layout is unchanged
        let g = parse_program("dead = p * q;\nout y = a + b;").unwrap();
        let (opt, stats, _) = optimize_graph(&g);
        assert!(stats.dead_removed >= 1, "{stats:?}");
        let names: Vec<&str> = opt
            .nodes()
            .iter()
            .filter_map(|n| match &n.op {
                Op::Input(name) => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["p", "q", "a", "b"]);
        assert_eq!(opt.count_ops(|o| matches!(o, Op::Mul)), 0);
    }

    #[test]
    fn reorder_keeps_io_order_and_semantics() {
        let g = parse_program(
            "t1 = a + b;\n t2 = c + d;\n t3 = e + f;\n out y = t1 * t2 + t3;\n out z = t1 - t2;",
        )
        .unwrap();
        let (opt, _, _) = optimize_graph(&g);
        let io = |g: &Cdfg, pick: fn(&Op) -> Option<String>| -> Vec<String> {
            g.nodes().iter().filter_map(|n| pick(&n.op)).collect()
        };
        let in_name = |o: &Op| match o {
            Op::Input(n) => Some(n.clone()),
            _ => None,
        };
        let out_name = |o: &Op| match o {
            Op::Output(n) => Some(n.clone()),
            _ => None,
        };
        assert_eq!(io(&g, in_name), io(&opt, in_name));
        assert_eq!(io(&g, out_name), io(&opt, out_name));
        let ins = named_inputs(&g, 3.25);
        for key in ["y", "z"] {
            assert_eq!(
                eval_f64(&g, &ins)[key].to_bits(),
                eval_f64(&opt, &ins)[key].to_bits()
            );
        }
    }

    #[test]
    fn fused_graphs_survive_optimization() {
        use crate::fuse::{fuse_critical_paths, FusionConfig};
        let g = parse_program("x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;").unwrap();
        for kind in [FmaKind::Pcs, FmaKind::Fcs] {
            let fused = fuse_critical_paths(&g, &FusionConfig::new(kind)).fused;
            let (opt, _, _) = optimize_graph(&fused);
            let ins = named_inputs(&fused, -1.75);
            assert_eq!(
                eval_bit_accurate(&fused, &ins)["x3"].to_bits(),
                eval_bit_accurate(&opt, &ins)["x3"].to_bits()
            );
        }
    }
}
