//! CDFG interpreters.
//!
//! Two evaluators back the pass-correctness story:
//!
//! * [`eval_f64`] — plain host-double semantics (each operator rounds),
//!   the behavior of the original unfused datapath;
//! * [`eval_bit_accurate`] — soft-float IEEE operators plus the
//!   *behavioral carry-save FMA units* for fused nodes, i.e. exactly what
//!   the generated hardware computes, bit for bit.
//!
//! The fusion pass is validated by running both on random inputs: the
//! fused datapath must agree with the unfused one to within its accuracy
//! envelope (it is usually *more* accurate, cf. Fig. 14).

use crate::cdfg::{Cdfg, FmaKind, Op};
use csfma_core::{CsFmaFormat, CsFmaUnit, CsOperand};
use csfma_softfloat::{FpFormat, Round, SoftFloat};
use std::collections::HashMap;

/// Transport format used for each FMA kind.
pub fn format_of(kind: FmaKind) -> CsFmaFormat {
    match kind {
        FmaKind::Pcs => CsFmaFormat::PCS_55_ZD,
        FmaKind::Fcs => CsFmaFormat::FCS_29_LZA,
    }
}

/// Evaluate with host doubles (fused nodes use `mul_add`, which is what
/// an *ideal* FMA would produce — the CS units approximate it).
pub fn eval_f64(g: &Cdfg, inputs: &HashMap<String, f64>) -> HashMap<String, f64> {
    let mut vals = vec![0f64; g.len()];
    let mut out = HashMap::new();
    for (id, n) in g.nodes().iter().enumerate() {
        let a = |i: usize| vals[n.args[i]];
        vals[id] = match &n.op {
            Op::Input(name) => *inputs
                .get(name)
                .unwrap_or_else(|| panic!("missing input {name}")),
            Op::Const(v) => *v,
            Op::Add => a(0) + a(1),
            Op::Sub => a(0) - a(1),
            Op::Mul => a(0) * a(1),
            Op::Div => a(0) / a(1),
            Op::Neg => -a(0),
            Op::Fma { negate_b, .. } => {
                let b = if *negate_b { -a(1) } else { a(1) };
                b.mul_add(a(2), a(0))
            }
            Op::IeeeToCs(_) | Op::CsToIeee(_) => a(0),
            Op::Output(name) => {
                out.insert(name.clone(), a(0));
                a(0)
            }
        };
    }
    out
}

/// A value in the bit-accurate evaluator. `CsOperand` grew inline limb
/// storage, but boxing it here would only trade the oracle's per-node
/// clone for a heap hop — this is the reference interpreter, not the
/// batch engine.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
enum Val {
    Ieee(SoftFloat),
    Cs(CsOperand),
}

impl Val {
    fn ieee(&self) -> &SoftFloat {
        match self {
            Val::Ieee(v) => v,
            Val::Cs(_) => panic!("expected IEEE value"),
        }
    }

    fn cs(&self) -> &CsOperand {
        match self {
            Val::Cs(v) => v,
            Val::Ieee(_) => panic!("expected CS value"),
        }
    }
}

/// Evaluate bit-accurately: IEEE nodes via the soft-float operators
/// (CoreGen semantics), fused nodes via the behavioral P/FCS-FMA units,
/// conversions via the real transport-format conversions.
pub fn eval_bit_accurate(g: &Cdfg, inputs: &HashMap<String, f64>) -> HashMap<String, f64> {
    const F: FpFormat = FpFormat::BINARY64;
    let pcs = CsFmaUnit::new(format_of(FmaKind::Pcs));
    let fcs = CsFmaUnit::new(format_of(FmaKind::Fcs));
    let mut vals: Vec<Option<Val>> = vec![None; g.len()];
    let mut out = HashMap::new();
    for (id, n) in g.nodes().iter().enumerate() {
        let v = match &n.op {
            Op::Input(name) => Val::Ieee(SoftFloat::from_f64(
                F,
                *inputs
                    .get(name)
                    .unwrap_or_else(|| panic!("missing input {name}")),
            )),
            Op::Const(c) => Val::Ieee(SoftFloat::from_f64(F, *c)),
            Op::Add => Val::Ieee(
                vals[n.args[0]]
                    .as_ref()
                    .unwrap()
                    .ieee()
                    .add(vals[n.args[1]].as_ref().unwrap().ieee()),
            ),
            Op::Sub => Val::Ieee(
                vals[n.args[0]]
                    .as_ref()
                    .unwrap()
                    .ieee()
                    .sub(vals[n.args[1]].as_ref().unwrap().ieee()),
            ),
            Op::Mul => Val::Ieee(
                vals[n.args[0]]
                    .as_ref()
                    .unwrap()
                    .ieee()
                    .mul(vals[n.args[1]].as_ref().unwrap().ieee()),
            ),
            Op::Div => Val::Ieee(
                vals[n.args[0]]
                    .as_ref()
                    .unwrap()
                    .ieee()
                    .div(vals[n.args[1]].as_ref().unwrap().ieee()),
            ),
            Op::Neg => Val::Ieee(vals[n.args[0]].as_ref().unwrap().ieee().neg()),
            Op::Fma { kind, negate_b } => {
                let unit = match kind {
                    FmaKind::Pcs => &pcs,
                    FmaKind::Fcs => &fcs,
                };
                let a = vals[n.args[0]].as_ref().unwrap().cs();
                let mut b = *vals[n.args[1]].as_ref().unwrap().ieee();
                if *negate_b {
                    b = b.neg();
                }
                let c = vals[n.args[2]].as_ref().unwrap().cs();
                Val::Cs(unit.fma(a, &b, c))
            }
            Op::IeeeToCs(kind) => Val::Cs(CsOperand::from_ieee(
                vals[n.args[0]].as_ref().unwrap().ieee(),
                format_of(*kind),
            )),
            Op::CsToIeee(_) => Val::Ieee(
                vals[n.args[0]]
                    .as_ref()
                    .unwrap()
                    .cs()
                    .to_ieee(F, Round::NearestEven),
            ),
            Op::Output(name) => {
                let v = *vals[n.args[0]].as_ref().unwrap().ieee();
                out.insert(name.clone(), v.to_f64());
                Val::Ieee(v)
            }
        };
        vals[id] = Some(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdfg::NodeId;

    fn inputs(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn f64_eval_basic() {
        let mut g = Cdfg::new();
        let a = g.input("a");
        let b = g.input("b");
        let m = g.mul(a, b);
        let s = g.add(m, a);
        g.output("y", s);
        let out = eval_f64(&g, &inputs(&[("a", 2.0), ("b", 3.0)]));
        assert_eq!(out["y"], 8.0);
    }

    #[test]
    fn bit_accurate_matches_f64_on_ieee_graph() {
        let mut g = Cdfg::new();
        let v: Vec<NodeId> = ["a", "b", "c"].iter().map(|s| g.input(*s)).collect();
        let m = g.mul(v[0], v[1]);
        let d = g.div(m, v[2]);
        let s = g.sub(d, v[0]);
        g.output("y", s);
        let ins = inputs(&[("a", 0.1), ("b", 7.3), ("c", -2.5)]);
        let f = eval_f64(&g, &ins);
        let b = eval_bit_accurate(&g, &ins);
        assert_eq!(f["y"].to_bits(), b["y"].to_bits());
    }

    #[test]
    fn fused_graph_evaluates_through_cs_domain() {
        use crate::cdfg::{FmaKind, Op};
        let mut g = Cdfg::new();
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let a_cs = g.push(Op::IeeeToCs(FmaKind::Fcs), vec![a]);
        let c_cs = g.push(Op::IeeeToCs(FmaKind::Fcs), vec![c]);
        let f = g.push(
            Op::Fma {
                kind: FmaKind::Fcs,
                negate_b: false,
            },
            vec![a_cs, b, c_cs],
        );
        let r = g.push(Op::CsToIeee(FmaKind::Fcs), vec![f]);
        g.output("y", r);
        g.validate();
        let ins = inputs(&[("a", 1.25), ("b", -3.0), ("c", 2.0)]);
        let got = eval_bit_accurate(&g, &ins)["y"];
        assert_eq!(got, 1.25 + (-3.0) * 2.0);
        // ideal reference agrees
        assert_eq!(eval_f64(&g, &ins)["y"], got);
    }
}
