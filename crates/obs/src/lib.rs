//! # csfma-obs — zero-overhead-when-disabled observability
//!
//! The batch engine's pipeline (parse → gate → optimize → lower → eval)
//! is a black box at runtime without instrumentation, and the paper's own
//! methodology (per-architecture latency/schedule tables, Secs. IV–V)
//! only works because every stage is measured. This crate is the one
//! instrumentation substrate the whole workspace shares:
//!
//! * [`Profiler`] — hierarchical stage **spans** with monotonic wall
//!   times, collected into a [`PipelineReport`] (flattened pre-order
//!   tree: each [`StageRecord`] carries its nesting depth);
//! * [`Counter`] — process-wide relaxed atomic counters for hot-path
//!   statistics (FMA ops per unit class, hosted-FPU fallbacks, cache
//!   traffic), cheap enough to live inside the behavioral units;
//! * [`Histogram`] — fixed-bucket atomic histograms (SoA chunk
//!   occupancy);
//! * an opt-in subscriber bridge (`ObsSubscriber`, feature
//!   `obs-tracing`) that streams span/counter events to a process-global
//!   sink — an offline stand-in for a `tracing` `Subscriber` (the
//!   workspace builds without registry access, so the real `tracing`
//!   crate is deliberately not a dependency).
//!
//! ## The determinism contract
//!
//! Instrumentation observes; it never participates. Nothing in this
//! crate feeds back into compiled tapes or evaluated values, so output
//! bytes are identical with observability enabled, disabled, or absent —
//! `tests/observability.rs` in the workspace root enforces this with
//! byte-identity proptests.
//!
//! ## The feature cascade
//!
//! With the `enabled` feature off (the same cascade pattern as the
//! workspace's `fault-inject` feature: each consumer crate forwards its
//! own default-on `obs` feature down to `csfma-obs/enabled`), every
//! entry point here is an inlined empty function over zero-sized state:
//! the disabled path compiles to no-ops, not to branches over a runtime
//! flag. [`time_us`] is the one deliberate exception — it is an explicit
//! stopwatch for benchmark harnesses, not engine instrumentation, and
//! keeps real timing in every configuration.

#![warn(missing_docs)]

use std::fmt;

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Measure the wall time of `f` in microseconds (monotonic clock). This
/// is the shared stopwatch of the bench harnesses and the CLI; unlike
/// the [`Profiler`] it is **not** compiled out when observability is
/// disabled — a benchmark that cannot time itself is useless.
pub fn time_us<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e6)
}

// ---------------------------------------------------------------------
// counters & histograms
// ---------------------------------------------------------------------

/// A process-wide monotonic event counter. Increments are relaxed
/// atomics when observability is compiled in and literal no-ops
/// otherwise, so the type can sit inside the behavioral units' hot
/// paths. Construct as a `static`:
///
/// ```
/// static FMA_OPS: csfma_obs::Counter = csfma_obs::Counter::new();
/// FMA_OPS.add(3);
/// FMA_OPS.incr();
/// # #[cfg(feature = "enabled")]
/// assert!(FMA_OPS.get() >= 4);
/// ```
#[derive(Debug)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    v: AtomicU64,
}

impl Counter {
    /// A zeroed counter (const: usable in `static` position).
    pub const fn new() -> Self {
        Counter {
            #[cfg(feature = "enabled")]
            v: AtomicU64::new(0),
        }
    }

    /// Add `n` events.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.v.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Add one event.
    #[inline(always)]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (always `0` when observability is compiled out).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        return self.v.load(Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        0
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A fixed-bucket atomic histogram; `N` is the bucket count and the
/// caller owns the bucket semantics (the SoA executor uses one bucket
/// per occupancy decile). Out-of-range samples clamp into the last
/// bucket. Zero-sized and inert when observability is compiled out.
#[derive(Debug)]
pub struct Histogram<const N: usize> {
    #[cfg(feature = "enabled")]
    buckets: [AtomicU64; N],
}

impl<const N: usize> Histogram<N> {
    /// A zeroed histogram (const: usable in `static` position).
    pub const fn new() -> Self {
        #[cfg(feature = "enabled")]
        {
            // [AtomicU64::new(0); N] needs Copy; build element-wise
            #[allow(clippy::declare_interior_mutable_const)]
            const ZERO: AtomicU64 = AtomicU64::new(0);
            Histogram { buckets: [ZERO; N] }
        }
        #[cfg(not(feature = "enabled"))]
        Histogram {}
    }

    /// Record one sample in `bucket` (clamped to the last bucket).
    #[inline(always)]
    pub fn record(&self, bucket: usize) {
        #[cfg(feature = "enabled")]
        self.buckets[bucket.min(N - 1)].fetch_add(1, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = bucket;
    }

    /// Snapshot every bucket (all zeros when compiled out).
    pub fn snapshot(&self) -> [u64; N] {
        #[cfg(feature = "enabled")]
        {
            let mut out = [0u64; N];
            for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
                *o = b.load(Ordering::Relaxed);
            }
            out
        }
        #[cfg(not(feature = "enabled"))]
        [0u64; N]
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().sum()
    }
}

impl<const N: usize> Default for Histogram<N> {
    fn default() -> Self {
        Histogram::new()
    }
}

// ---------------------------------------------------------------------
// spans & reports
// ---------------------------------------------------------------------

/// One completed pipeline stage: a node of the span tree, flattened in
/// pre-order with its nesting `depth` (children follow their parent and
/// carry `depth + 1`).
#[derive(Clone, Debug, PartialEq)]
pub struct StageRecord {
    /// Stage name (`"parse"`, `"gate"`, `"lower"`, …).
    pub name: &'static str,
    /// Nesting depth: `0` for top-level stages.
    pub depth: usize,
    /// Monotonic wall time spent inside the span, microseconds.
    pub wall_us: f64,
}

/// Handle returned by [`Profiler::enter`]; pass it back to
/// [`Profiler::exit`]. Tokens are affine by convention (enter/exit in
/// LIFO order); a leaked token surfaces as a warning in the report, not
/// as a panic.
#[derive(Debug)]
#[must_use = "pass the token back to Profiler::exit to close the span"]
pub struct SpanToken(#[allow(dead_code)] usize);

const TOKEN_NONE: usize = usize::MAX;

#[cfg(feature = "enabled")]
#[derive(Debug)]
struct ProfilerInner {
    records: Vec<StageRecord>,
    /// Per-record start instant (taken at `enter`, consumed at `exit`).
    starts: Vec<Option<Instant>>,
    /// Indices of currently-open records, innermost last.
    stack: Vec<usize>,
    counters: Vec<(&'static str, f64)>,
    warnings: Vec<String>,
}

/// Collects hierarchical stage spans and named counters into a
/// [`PipelineReport`]. One profiler instruments one pipeline run; it is
/// deliberately not global, so concurrent compilations cannot bleed into
/// each other's reports.
///
/// A [`Profiler::disabled`] instance — and *every* instance when the
/// `enabled` feature is off — records nothing and costs (at most) one
/// branch per call.
#[derive(Debug, Default)]
pub struct Profiler {
    #[cfg(feature = "enabled")]
    inner: Option<ProfilerInner>,
}

impl Profiler {
    /// A recording profiler (recording only if observability is
    /// compiled in; otherwise identical to [`Profiler::disabled`]).
    pub fn new() -> Self {
        Profiler {
            #[cfg(feature = "enabled")]
            inner: Some(ProfilerInner {
                records: Vec::new(),
                starts: Vec::new(),
                stack: Vec::new(),
                counters: Vec::new(),
                warnings: Vec::new(),
            }),
        }
    }

    /// A profiler that records nothing, for callers that want the
    /// profiled code path without the bookkeeping.
    pub fn disabled() -> Self {
        Profiler::default()
    }

    /// True when this instance is actually recording.
    #[inline]
    pub fn is_recording(&self) -> bool {
        #[cfg(feature = "enabled")]
        return self.inner.is_some();
        #[cfg(not(feature = "enabled"))]
        false
    }

    /// Open a span named `name`, nested inside the innermost open span.
    #[inline]
    pub fn enter(&mut self, name: &'static str) -> SpanToken {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            let idx = inner.records.len();
            inner.records.push(StageRecord {
                name,
                depth: inner.stack.len(),
                wall_us: 0.0,
            });
            inner.starts.push(Some(Instant::now()));
            inner.stack.push(idx);
            subscriber::span_enter(name, inner.stack.len() - 1);
            return SpanToken(idx);
        }
        let _ = name;
        SpanToken(TOKEN_NONE)
    }

    /// Close a span. Spans close innermost-first; exiting an outer span
    /// force-closes anything still open inside it (recorded with the
    /// time observed at this exit, plus a report warning).
    #[inline]
    pub fn exit(&mut self, token: SpanToken) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            if token.0 == TOKEN_NONE {
                return;
            }
            while let Some(open) = inner.stack.pop() {
                if let Some(start) = inner.starts[open].take() {
                    inner.records[open].wall_us = start.elapsed().as_secs_f64() * 1e6;
                    subscriber::span_exit(inner.records[open].name, inner.records[open].wall_us);
                }
                if open == token.0 {
                    return;
                }
                inner.warnings.push(format!(
                    "span {:?} force-closed by an outer exit",
                    inner.records[open].name
                ));
            }
            inner
                .warnings
                .push("span token exited twice (or out of order)".to_string());
        }
        #[cfg(not(feature = "enabled"))]
        let _ = token;
    }

    /// Run `f` inside a span named `name`.
    #[inline]
    pub fn scope<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        let tok = self.enter(name);
        let r = f(self);
        self.exit(tok);
        r
    }

    /// Record (or overwrite) a named report counter.
    #[inline]
    pub fn set_counter(&mut self, name: &'static str, value: f64) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            subscriber::counter(name, value);
            if let Some(slot) = inner.counters.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = value;
                return;
            }
            inner.counters.push((name, value));
            return;
        }
        let _ = (name, value);
    }

    /// Add `value` to a named report counter (creating it at zero).
    #[inline]
    pub fn add_counter(&mut self, name: &'static str, value: f64) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            subscriber::counter(name, value);
            if let Some(slot) = inner.counters.iter_mut().find(|(n, _)| *n == name) {
                slot.1 += value;
                return;
            }
            inner.counters.push((name, value));
            return;
        }
        let _ = (name, value);
    }

    /// Attach a free-form warning to the report.
    pub fn warn(&mut self, message: impl Into<String>) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            inner.warnings.push(message.into());
        }
        #[cfg(not(feature = "enabled"))]
        let _ = message.into();
    }

    /// Close any spans still open and produce the report. A profiler
    /// that never recorded returns [`PipelineReport::empty`].
    pub fn finish(mut self) -> PipelineReport {
        #[cfg(feature = "enabled")]
        if let Some(mut inner) = self.inner.take() {
            while let Some(open) = inner.stack.pop() {
                if let Some(start) = inner.starts[open].take() {
                    inner.records[open].wall_us = start.elapsed().as_secs_f64() * 1e6;
                }
                inner.warnings.push(format!(
                    "span {:?} never exited; closed at finish",
                    inner.records[open].name
                ));
            }
            return PipelineReport {
                recorded: true,
                stages: inner.records,
                counters: inner.counters,
                warnings: inner.warnings,
            };
        }
        PipelineReport::empty()
    }
}

/// The machine-readable product of one profiled pipeline run: stage
/// spans (pre-order, depth-annotated), named counters, and any
/// instrumentation self-diagnostics. Produced by [`Profiler::finish`];
/// serialized by [`PipelineReport::to_json`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineReport {
    /// Whether a recording profiler produced this report. `false` means
    /// observability was disabled (or compiled out) — the report is
    /// structurally valid but empty.
    pub recorded: bool,
    /// Completed spans in pre-order (parents before children).
    pub stages: Vec<StageRecord>,
    /// Named scalar counters, in insertion order.
    pub counters: Vec<(&'static str, f64)>,
    /// Instrumentation self-diagnostics (unbalanced spans, …). These
    /// describe the *measurement*, never the computation.
    pub warnings: Vec<String>,
}

impl PipelineReport {
    /// The report of a run nobody measured.
    pub fn empty() -> Self {
        PipelineReport::default()
    }

    /// The first stage with this name, if any.
    pub fn stage(&self, name: &str) -> Option<&StageRecord> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Value of a named counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Merge another report into this one: stages append (re-based at
    /// top level relative depth is preserved), counters from `other`
    /// overwrite same-named counters here. Used to stitch the compile
    /// and eval halves of a CLI run into one document.
    pub fn absorb(&mut self, other: PipelineReport) {
        self.recorded |= other.recorded;
        self.stages.extend(other.stages);
        for (name, value) in other.counters {
            if let Some(slot) = self.counters.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = value;
            } else {
                self.counters.push((name, value));
            }
        }
        self.warnings.extend(other.warnings);
    }

    /// Serialize as a self-contained JSON object:
    /// `{"recorded": …, "stages": [{"name","depth","wall_us"}…],
    /// "counters": {…}, "warnings": […]}`. Hand-rolled — the workspace
    /// has no JSON dependency — with round-trip-precision numbers.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"recorded\": {},", self.recorded);
        let _ = writeln!(s, "  \"stages\": [");
        for (i, st) in self.stages.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"depth\": {}, \"wall_us\": {:.3}}}{}",
                st.name,
                st.depth,
                st.wall_us,
                if i + 1 < self.stages.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"counters\": {{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            // counters are logically integers or rates; print either way
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            if v.fract() == 0.0 && v.abs() < 9e15 {
                let _ = writeln!(s, "    \"{name}\": {}{comma}", *v as i64);
            } else {
                let _ = writeln!(s, "    \"{name}\": {v:.4}{comma}");
            }
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"warnings\": [");
        for (i, w) in self.warnings.iter().enumerate() {
            let _ = writeln!(
                s,
                "    \"{}\"{}",
                w.replace('\\', "\\\\").replace('"', "\\\""),
                if i + 1 < self.warnings.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = write!(s, "}}");
        s
    }
}

impl fmt::Display for PipelineReport {
    /// Human-readable stage tree plus counters (the `--profile` text
    /// form).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.recorded {
            return writeln!(f, "profile: observability disabled (nothing recorded)");
        }
        writeln!(f, "profile:")?;
        for st in &self.stages {
            writeln!(
                f,
                "  {:indent$}{:<12} {:>10.1} us",
                "",
                st.name,
                st.wall_us,
                indent = st.depth * 2
            )?;
        }
        for (name, v) in &self.counters {
            if v.fract() == 0.0 && v.abs() < 9e15 {
                writeln!(f, "  {name} = {}", *v as i64)?;
            } else {
                writeln!(f, "  {name} = {v:.4}")?;
            }
        }
        for w in &self.warnings {
            writeln!(f, "  warning: {w}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// subscriber bridge (feature `obs-tracing`)
// ---------------------------------------------------------------------

/// Event sink for the opt-in streaming bridge (feature `obs-tracing`):
/// an offline stand-in for a `tracing` `Subscriber`. Install one with
/// [`set_subscriber`]; every recording [`Profiler`] then forwards span
/// and counter events as they happen, in addition to building its
/// report. Implementations must tolerate concurrent calls from multiple
/// profilers on multiple threads.
#[cfg(feature = "obs-tracing")]
pub trait ObsSubscriber: Send + Sync {
    /// A span opened (`depth` as in [`StageRecord`]).
    fn on_span_enter(&self, name: &'static str, depth: usize);
    /// A span closed after `wall_us` microseconds.
    fn on_span_exit(&self, name: &'static str, wall_us: f64);
    /// A counter was set or bumped to `value`.
    fn on_counter(&self, name: &'static str, value: f64);
}

/// Install the process-global subscriber. Returns `false` (and keeps
/// the existing one) if a subscriber was already installed — the global
/// is write-once, mirroring `tracing::subscriber::set_global_default`.
#[cfg(feature = "obs-tracing")]
pub fn set_subscriber(sub: Box<dyn ObsSubscriber>) -> bool {
    subscriber::GLOBAL.set(sub).is_ok()
}

#[cfg(feature = "obs-tracing")]
mod subscriber {
    use super::ObsSubscriber;
    use std::sync::OnceLock;

    pub(crate) static GLOBAL: OnceLock<Box<dyn ObsSubscriber>> = OnceLock::new();

    #[inline]
    pub(crate) fn span_enter(name: &'static str, depth: usize) {
        if let Some(s) = GLOBAL.get() {
            s.on_span_enter(name, depth);
        }
    }

    #[inline]
    pub(crate) fn span_exit(name: &'static str, wall_us: f64) {
        if let Some(s) = GLOBAL.get() {
            s.on_span_exit(name, wall_us);
        }
    }

    #[inline]
    pub(crate) fn counter(name: &'static str, value: f64) {
        if let Some(s) = GLOBAL.get() {
            s.on_counter(name, value);
        }
    }
}

#[cfg(all(feature = "enabled", not(feature = "obs-tracing")))]
mod subscriber {
    #[inline(always)]
    pub(crate) fn span_enter(_: &'static str, _: usize) {}
    #[inline(always)]
    pub(crate) fn span_exit(_: &'static str, _: f64) {}
    #[inline(always)]
    pub(crate) fn counter(_: &'static str, _: f64) {}
}

// ---------------------------------------------------------------------
// serve counters
// ---------------------------------------------------------------------

/// Bucket count of the [`serve_counts`] queue-depth histogram: one
/// bucket per admission-queue depth `0..N-1`, deeper clamps into the
/// last bucket.
pub const SERVE_QUEUE_BUCKETS: usize = 16;

static SERVE_ACCEPTED: Counter = Counter::new();
static SERVE_SHED: Counter = Counter::new();
static SERVE_DEADLINE: Counter = Counter::new();
static SERVE_RETRY: Counter = Counter::new();
static SERVE_QUARANTINE: Counter = Counter::new();
static SERVE_QUEUE_DEPTH: Histogram<SERVE_QUEUE_BUCKETS> = Histogram::new();

/// Snapshot of the batch-evaluation server's process-wide counters
/// (`serve_*` in profile output). All zeros when observability is
/// compiled out — `csfma-serve` keeps its own authoritative
/// `ServeStats` independent of this layer, so responses do not change.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeCounts {
    /// Requests admitted past the admission gate.
    pub accepted: u64,
    /// Requests rejected with a `SHED` response (queue or byte budget).
    pub shed: u64,
    /// Requests that ran out of deadline at a chunk boundary.
    pub deadline: u64,
    /// Engine-level retries after a contained evaluation panic.
    pub retries: u64,
    /// Rows quarantined (NaN-poisoned) by the robust ladder under serve.
    pub quarantined: u64,
    /// Admission-queue depth observed at each submit, one bucket per
    /// depth (clamped into the last bucket).
    pub queue_depth: [u64; SERVE_QUEUE_BUCKETS],
}

/// Snapshot the `serve_*` counters.
pub fn serve_counts() -> ServeCounts {
    ServeCounts {
        accepted: SERVE_ACCEPTED.get(),
        shed: SERVE_SHED.get(),
        deadline: SERVE_DEADLINE.get(),
        retries: SERVE_RETRY.get(),
        quarantined: SERVE_QUARANTINE.get(),
        queue_depth: SERVE_QUEUE_DEPTH.snapshot(),
    }
}

/// Count one admitted request.
#[inline(always)]
pub fn count_serve_accepted() {
    SERVE_ACCEPTED.incr();
}

/// Count one load-shed rejection.
#[inline(always)]
pub fn count_serve_shed() {
    SERVE_SHED.incr();
}

/// Count one deadline expiry.
#[inline(always)]
pub fn count_serve_deadline() {
    SERVE_DEADLINE.incr();
}

/// Count `n` engine-level retries.
#[inline(always)]
pub fn count_serve_retries(n: u64) {
    SERVE_RETRY.add(n);
}

/// Count `n` quarantined rows.
#[inline(always)]
pub fn count_serve_quarantined(n: u64) {
    SERVE_QUARANTINE.add(n);
}

/// Record the admission-queue depth observed at one submit.
#[inline(always)]
pub fn record_serve_queue_depth(depth: usize) {
    SERVE_QUEUE_DEPTH.record(depth);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_preorder_with_depth() {
        let mut p = Profiler::new();
        let outer = p.enter("compile");
        let inner = p.enter("gate");
        std::thread::sleep(std::time::Duration::from_micros(200));
        p.exit(inner);
        let inner2 = p.enter("lower");
        p.exit(inner2);
        p.exit(outer);
        let rep = p.finish();
        if !rep.recorded {
            return; // compiled out: nothing to assert
        }
        let names: Vec<_> = rep.stages.iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(names, vec![("compile", 0), ("gate", 1), ("lower", 1)]);
        let parent = rep.stage("compile").unwrap().wall_us;
        let children: f64 = rep.stages.iter().skip(1).map(|s| s.wall_us).sum();
        assert!(
            children <= parent * 1.0000001,
            "children {children} exceed parent {parent}"
        );
        assert!(rep.warnings.is_empty(), "{:?}", rep.warnings);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        let t = p.enter("x");
        p.set_counter("c", 3.0);
        p.exit(t);
        let rep = p.finish();
        assert!(!rep.recorded);
        assert!(rep.stages.is_empty());
        assert!(rep.counter("c").is_none());
        assert_eq!(rep, PipelineReport::empty());
    }

    #[test]
    fn unbalanced_spans_warn_instead_of_panicking() {
        let mut p = Profiler::new();
        let outer = p.enter("outer");
        let _leaked = p.enter("leaked");
        p.exit(outer); // force-closes "leaked"
        let rep = p.finish();
        if !rep.recorded {
            return;
        }
        assert_eq!(rep.stages.len(), 2);
        assert!(rep.warnings.iter().any(|w| w.contains("leaked")), "{rep:?}");
    }

    #[test]
    fn counters_set_add_and_serialize() {
        let mut p = Profiler::new();
        p.add_counter("rows", 10.0);
        p.add_counter("rows", 5.0);
        p.set_counter("rate", 2.5);
        p.set_counter("rate", 3.5);
        let rep = p.finish();
        if !rep.recorded {
            return;
        }
        assert_eq!(rep.counter("rows"), Some(15.0));
        assert_eq!(rep.counter("rate"), Some(3.5));
        let json = rep.to_json();
        assert!(json.contains("\"rows\": 15"), "{json}");
        assert!(json.contains("\"rate\": 3.5"), "{json}");
        assert!(json.contains("\"recorded\": true"), "{json}");
    }

    #[test]
    fn static_counter_and_histogram_accumulate() {
        static C: Counter = Counter::new();
        static H: Histogram<4> = Histogram::new();
        let before = C.get();
        C.add(2);
        C.incr();
        H.record(0);
        H.record(3);
        H.record(99); // clamps into the last bucket
        #[cfg(feature = "enabled")]
        {
            assert_eq!(C.get() - before, 3);
            let snap = H.snapshot();
            assert_eq!(snap[0], 1);
            assert_eq!(snap[3], 2);
            assert_eq!(H.total(), 3);
        }
        #[cfg(not(feature = "enabled"))]
        {
            assert_eq!(C.get(), 0);
            assert_eq!(before, 0);
            assert_eq!(H.total(), 0);
        }
    }

    #[test]
    fn absorb_merges_counters_and_stages() {
        let mut a = Profiler::new();
        let t = a.enter("compile");
        a.exit(t);
        a.set_counter("x", 1.0);
        let mut ra = a.finish();

        let mut b = Profiler::new();
        let t = b.enter("eval");
        b.exit(t);
        b.set_counter("x", 9.0);
        b.set_counter("y", 2.0);
        let rb = b.finish();

        ra.absorb(rb);
        if !ra.recorded {
            return;
        }
        assert!(ra.stage("compile").is_some() && ra.stage("eval").is_some());
        assert_eq!(ra.counter("x"), Some(9.0));
        assert_eq!(ra.counter("y"), Some(2.0));
    }

    #[test]
    fn time_us_measures_even_when_disabled() {
        let (value, us) = time_us(|| {
            std::thread::sleep(std::time::Duration::from_micros(300));
            42
        });
        assert_eq!(value, 42);
        assert!(us >= 100.0, "stopwatch must be real: {us}");
    }
}
