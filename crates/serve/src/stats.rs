//! Server statistics: always-on relaxed atomics plus a JSON snapshot.
//!
//! These are the *authoritative* counters the acceptance gate reconciles
//! against client-observed outcomes (every submitted frame gets exactly
//! one terminal response, and `accepted + shed + refusals` must cover
//! every SUBMIT seen). The `serve_*` counters in `csfma-obs` mirror a
//! subset for profile output but compile away with observability;
//! these do not.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets of the admission queue-depth histogram (depth `0..15`,
/// deeper clamps into the last bucket).
pub const QUEUE_DEPTH_BUCKETS: usize = 16;

/// Process-lifetime counters of one [`Server`](crate::Server). All
/// increments are relaxed — the numbers are monotonic totals, not a
/// synchronization protocol.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// SUBMIT frames admitted past the admission gate.
    pub accepted: AtomicU64,
    /// SUBMIT frames refused with a SHED response.
    pub shed: AtomicU64,
    /// Requests cut off by their deadline at a chunk boundary.
    pub deadline: AtomicU64,
    /// Engine-level retries after a contained evaluation panic.
    pub retries: AtomicU64,
    /// Rows quarantined (NaN-poisoned) by the robust ladder.
    pub quarantined_rows: AtomicU64,
    /// RESULT frames sent.
    pub results: AtomicU64,
    /// ERROR frames answering an *admitted* SUBMIT (SV003: parse or
    /// compile refusals, containment failure). Part of the ledger:
    /// `accepted == results + deadline + errors` after drain.
    pub errors: AtomicU64,
    /// ERROR frames sent before admission: undecodable bytes (SV001 /
    /// SV002), response-typed frames, and SUBMITs refused while
    /// draining (SV006). Outside the admission ledger by construction.
    pub refusals: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connection handlers that panicked and were contained.
    pub panics_contained: AtomicU64,
    /// Connections closed for exceeding the per-connection rate limit.
    pub rate_limited: AtomicU64,
    /// Admission-queue depth observed at each SUBMIT.
    pub queue_depth: [AtomicU64; QUEUE_DEPTH_BUCKETS],
}

/// A plain-value copy of [`ServeStats`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`ServeStats::accepted`].
    pub accepted: u64,
    /// See [`ServeStats::shed`].
    pub shed: u64,
    /// See [`ServeStats::deadline`].
    pub deadline: u64,
    /// See [`ServeStats::retries`].
    pub retries: u64,
    /// See [`ServeStats::quarantined_rows`].
    pub quarantined_rows: u64,
    /// See [`ServeStats::results`].
    pub results: u64,
    /// See [`ServeStats::errors`].
    pub errors: u64,
    /// See [`ServeStats::refusals`].
    pub refusals: u64,
    /// See [`ServeStats::connections`].
    pub connections: u64,
    /// See [`ServeStats::panics_contained`].
    pub panics_contained: u64,
    /// See [`ServeStats::rate_limited`].
    pub rate_limited: u64,
    /// See [`ServeStats::queue_depth`].
    pub queue_depth: [u64; QUEUE_DEPTH_BUCKETS],
}

impl ServeStats {
    /// Record the admission-queue depth observed at one SUBMIT.
    pub fn record_queue_depth(&self, depth: usize) {
        self.queue_depth[depth.min(QUEUE_DEPTH_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        csfma_obs::record_serve_queue_depth(depth);
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut queue_depth = [0u64; QUEUE_DEPTH_BUCKETS];
        for (o, b) in queue_depth.iter_mut().zip(self.queue_depth.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline: self.deadline.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined_rows: self.quarantined_rows.load(Ordering::Relaxed),
            results: self.results.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            refusals: self.refusals.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            queue_depth,
        }
    }
}

impl StatsSnapshot {
    /// Render as a flat JSON object (hand-rolled: the workspace builds
    /// offline, with no serde).
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self.queue_depth.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "{{\"accepted\":{},\"shed\":{},\"deadline\":{},\"retries\":{},",
                "\"quarantined_rows\":{},\"results\":{},\"errors\":{},\"refusals\":{},",
                "\"connections\":{},\"panics_contained\":{},\"rate_limited\":{},",
                "\"queue_depth\":[{}]}}"
            ),
            self.accepted,
            self.shed,
            self.deadline,
            self.retries,
            self.quarantined_rows,
            self.results,
            self.errors,
            self.refusals,
            self.connections,
            self.panics_contained,
            self.rate_limited,
            buckets.join(",")
        )
    }

    /// Parse the exact document [`StatsSnapshot::to_json`] produces
    /// (clients use this to read STATS responses; it is not a general
    /// JSON parser).
    pub fn from_json(s: &str) -> Option<StatsSnapshot> {
        let field = |name: &str| -> Option<u64> {
            let key = format!("\"{name}\":");
            let at = s.find(&key)? + key.len();
            let rest = &s[at..];
            let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
            rest[..end].trim().parse().ok()
        };
        let mut queue_depth = [0u64; QUEUE_DEPTH_BUCKETS];
        let qk = "\"queue_depth\":[";
        let qa = s.find(qk)? + qk.len();
        let qb = s[qa..].find(']')? + qa;
        for (i, tok) in s[qa..qb].split(',').enumerate() {
            if i < QUEUE_DEPTH_BUCKETS {
                queue_depth[i] = tok.trim().parse().ok()?;
            }
        }
        Some(StatsSnapshot {
            accepted: field("accepted")?,
            shed: field("shed")?,
            deadline: field("deadline")?,
            retries: field("retries")?,
            quarantined_rows: field("quarantined_rows")?,
            results: field("results")?,
            errors: field("errors")?,
            refusals: field("refusals")?,
            connections: field("connections")?,
            panics_contained: field("panics_contained")?,
            rate_limited: field("rate_limited")?,
            queue_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_round_trips() {
        let st = ServeStats::default();
        st.accepted.fetch_add(17, Ordering::Relaxed);
        st.shed.fetch_add(3, Ordering::Relaxed);
        st.quarantined_rows.fetch_add(9, Ordering::Relaxed);
        st.record_queue_depth(0);
        st.record_queue_depth(2);
        st.record_queue_depth(999); // clamps into the last bucket
        let snap = st.snapshot();
        assert_eq!(snap.queue_depth[0], 1);
        assert_eq!(snap.queue_depth[2], 1);
        assert_eq!(snap.queue_depth[QUEUE_DEPTH_BUCKETS - 1], 1);
        let json = snap.to_json();
        assert_eq!(StatsSnapshot::from_json(&json), Some(snap));
    }
}
