//! The TCP server: accept loop, admission control, graceful drain.
//!
//! Concurrency model (std-only, no async runtime): one OS thread per
//! connection, each wrapped in `catch_unwind` so no panic ever reaches
//! the accept loop; requests from all connections funnel into the
//! process-wide scheduler pool through the robust executor, and the
//! tape cache is sharded per worker at startup
//! ([`set_tape_cache_shards`]) so concurrent compile lookups do not
//! convoy on one mutex.
//!
//! Admission is a bounded gate: at most `max_inflight` requests
//! evaluate at once, at most `max_queue` more may wait (bounded, so
//! waiting cannot pile up memory), and an in-flight byte budget bounds
//! the row data resident at once. Anything beyond sheds with a
//! retry-after hint — the one response a client can always rely on
//! costing the server almost nothing.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use csfma_hls::set_tape_cache_shards;

use crate::engine::{self, EngineConfig};
use crate::frame::{self, Frame, FrameError, DEFAULT_MAX_FRAME_LEN};
use crate::stats::{ServeStats, StatsSnapshot};

/// Everything a [`Server`] needs to know, with defaults tuned for the
/// integration tests (small and fast; the CLI raises them).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads per request (robust-executor `threads`).
    pub workers: usize,
    /// Requests evaluating concurrently before the queue forms.
    pub max_inflight: usize,
    /// Bounded admission-queue length; beyond it, submits shed at once.
    pub max_queue: usize,
    /// Longest a queued submit waits for a slot before shedding.
    pub queue_wait: Duration,
    /// Total row-data bytes admitted at once (in-flight byte budget).
    pub max_inflight_bytes: usize,
    /// Deadline applied when a SUBMIT carries `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Per-connection frame-size limit (payload bytes).
    pub max_frame_len: usize,
    /// Per-connection SUBMIT rate limit (token bucket, frames/second);
    /// excess frames are throttled, not dropped.
    pub max_frames_per_sec: f64,
    /// A connection with a stalled partial frame (slowloris) or no
    /// traffic at all is closed after this long.
    pub idle_timeout: Duration,
    /// Robust-executor chunk retries per request.
    pub chunk_retries: u32,
    /// Server-side fault-injection seed (`None` = clean).
    pub fault_seed: Option<u64>,
    /// How long `run` waits for in-flight connections after drain
    /// begins before giving up on them.
    pub drain_grace: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            max_inflight: 4,
            max_queue: 8,
            queue_wait: Duration::from_millis(200),
            max_inflight_bytes: 64 << 20,
            default_deadline: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_frames_per_sec: 500.0,
            idle_timeout: Duration::from_secs(10),
            chunk_retries: 2,
            fault_seed: None,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// Why the admission gate refused a request.
enum Refusal {
    Shed { retry_after_ms: u32 },
    Draining,
}

#[derive(Default)]
struct GateInner {
    inflight: usize,
    inflight_bytes: usize,
    queued: usize,
}

struct Gate {
    inner: Mutex<GateInner>,
    freed: Condvar,
}

struct Shared {
    cfg: ServeConfig,
    engine: EngineConfig,
    stats: ServeStats,
    draining: AtomicBool,
    gate: Gate,
    live_conns: AtomicUsize,
    next_request_id: AtomicU64,
}

impl Shared {
    fn admit(&self, bytes: usize) -> Result<usize, Refusal> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(Refusal::Draining);
        }
        let cfg = &self.cfg;
        let mut g = self.gate.inner.lock().unwrap_or_else(|e| e.into_inner());
        let depth_seen = g.queued;
        let fits = |g: &GateInner| {
            g.inflight < cfg.max_inflight
                && g.inflight_bytes + bytes <= cfg.max_inflight_bytes.max(bytes)
        };
        if fits(&g) {
            g.inflight += 1;
            g.inflight_bytes += bytes;
            return Ok(depth_seen);
        }
        if g.queued >= cfg.max_queue {
            return Err(Refusal::Shed {
                retry_after_ms: retry_hint(cfg, g.queued),
            });
        }
        g.queued += 1;
        let deadline = Instant::now() + cfg.queue_wait;
        loop {
            let now = Instant::now();
            if fits(&g) {
                g.queued -= 1;
                g.inflight += 1;
                g.inflight_bytes += bytes;
                return Ok(depth_seen);
            }
            if now >= deadline || self.draining.load(Ordering::SeqCst) {
                g.queued -= 1;
                let draining = self.draining.load(Ordering::SeqCst);
                let depth = g.queued;
                drop(g);
                return Err(if draining {
                    Refusal::Draining
                } else {
                    Refusal::Shed {
                        retry_after_ms: retry_hint(cfg, depth),
                    }
                });
            }
            let (guard, _) = self
                .gate
                .freed
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }

    fn release(&self, bytes: usize) {
        let mut g = self.gate.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.inflight -= 1;
        g.inflight_bytes -= bytes;
        drop(g);
        self.gate.freed.notify_all();
    }
}

fn retry_hint(cfg: &ServeConfig, queue_depth: usize) -> u32 {
    // the hint scales with how far behind the server is; clients that
    // honor it spread their retries instead of stampeding
    (cfg.queue_wait.as_millis() as u32 / 2).max(10) * (queue_depth as u32 + 1)
}

/// Handle for requesting drain from another thread (or a signal).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful drain: stop admitting, finish (or deadline out)
    /// in-flight requests, then let [`Server::run`] return.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.gate.freed.notify_all();
    }

    /// Current stats.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }
}

/// Set by the SIGTERM/SIGINT handler; polled by every running server.
static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

/// Install SIGTERM + SIGINT handlers that trigger graceful drain in
/// every [`Server::run`] loop in the process. Uses the C `signal(2)`
/// entry point directly — the workspace is std-only and the handler
/// body is one atomic store, which is async-signal-safe.
#[cfg(unix)]
pub fn install_signal_drain() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNAL_DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: *const ()) -> *const ();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const ();
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// The batch-evaluation server. Construct with [`Server::bind`], then
/// [`Server::run`] the accept loop to completion (it returns after a
/// drain finishes).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and size the tape cache's shard count to the
    /// worker pool. Does not accept yet.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        set_tape_cache_shards(cfg.workers.max(cfg.max_inflight));
        let engine = EngineConfig {
            workers: cfg.workers,
            chunk_retries: cfg.chunk_retries,
            fault_seed: cfg.fault_seed,
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                engine,
                stats: ServeStats::default(),
                draining: AtomicBool::new(false),
                gate: Gate {
                    inner: Mutex::new(GateInner::default()),
                    freed: Condvar::new(),
                },
                live_conns: AtomicUsize::new(0),
                next_request_id: AtomicU64::new(0),
                cfg,
            }),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for draining/inspecting the server from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Run the accept loop until a drain completes; returns the final
    /// stats. No connection panic can escape this loop.
    pub fn run(self) -> StatsSnapshot {
        let Server { listener, shared } = self;
        let mut conn_threads: VecDeque<std::thread::JoinHandle<()>> = VecDeque::new();
        loop {
            if SIGNAL_DRAIN.load(Ordering::SeqCst) {
                shared.draining.store(true, Ordering::SeqCst);
                shared.gate.freed.notify_all();
            }
            if shared.draining.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((sock, _peer)) => {
                    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                    shared.live_conns.fetch_add(1, Ordering::SeqCst);
                    let sh = Arc::clone(&shared);
                    conn_threads.push_back(std::thread::spawn(move || {
                        let contained =
                            catch_unwind(AssertUnwindSafe(|| handle_connection(&sh, sock)));
                        if contained.is_err() {
                            sh.stats.panics_contained.fetch_add(1, Ordering::Relaxed);
                        }
                        sh.live_conns.fetch_sub(1, Ordering::SeqCst);
                    }));
                    // reap finished handlers so the list stays bounded
                    while conn_threads.front().is_some_and(|t| t.is_finished()) {
                        let _ = conn_threads.pop_front().map(|t| t.join());
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        // drain: stop accepting (we already have), then wait for
        // in-flight connections to finish or for the grace period
        let grace_end = Instant::now() + shared.cfg.drain_grace;
        while shared.live_conns.load(Ordering::SeqCst) > 0 && Instant::now() < grace_end {
            std::thread::sleep(Duration::from_millis(5));
        }
        for t in conn_threads {
            if t.is_finished() {
                let _ = t.join();
            }
        }
        shared.stats.snapshot()
    }
}

/// One connection's read loop. Decode errors answer with a structured
/// ERROR frame and close (a corrupt length-prefixed stream cannot be
/// resynchronized); panics are contained one level up.
fn handle_connection(sh: &Shared, mut sock: TcpStream) {
    let _ = sock.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = sock.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 64 * 1024];
    let mut last_progress = Instant::now();
    // token bucket for the per-connection frame rate limit
    let mut allowance = sh.cfg.max_frames_per_sec;
    let mut last_refill = Instant::now();
    loop {
        // decode every complete frame already buffered
        loop {
            match frame::decode(&buf, sh.cfg.max_frame_len) {
                Ok(Some((f, consumed))) => {
                    buf.drain(..consumed);
                    last_progress = Instant::now();
                    allowance = (allowance
                        + last_refill.elapsed().as_secs_f64() * sh.cfg.max_frames_per_sec)
                        .min(sh.cfg.max_frames_per_sec.max(1.0));
                    last_refill = Instant::now();
                    if allowance < 1.0 {
                        // throttle, don't drop: sleep off the deficit
                        sh.stats.rate_limited.fetch_add(1, Ordering::Relaxed);
                        let wait = (1.0 - allowance) / sh.cfg.max_frames_per_sec;
                        std::thread::sleep(Duration::from_secs_f64(wait.min(1.0)));
                    }
                    allowance = (allowance - 1.0).max(0.0);
                    if !handle_frame(sh, &mut sock, f) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let code: u16 = match e {
                        FrameError::TooLarge { .. } => 1,
                        _ => 2,
                    };
                    sh.stats.refusals.fetch_add(1, Ordering::Relaxed);
                    let reply = Frame::Error {
                        code,
                        message: format!("SV{code:03}: {e}"),
                    };
                    let _ = sock.write_all(&frame::encode(&reply));
                    return;
                }
            }
        }
        if sh.draining.load(Ordering::SeqCst) && buf.is_empty() {
            return;
        }
        match sock.read(&mut scratch) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                buf.extend_from_slice(&scratch[..n]);
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // a stalled partial frame (slowloris) or a dead idle
                // connection: both close after the idle timeout
                if last_progress.elapsed() > sh.cfg.idle_timeout {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Dispatch one decoded frame; `false` means close the connection.
fn handle_frame(sh: &Shared, sock: &mut TcpStream, f: Frame) -> bool {
    let reply = match f {
        Frame::Ping { token } => Frame::Ping { token },
        Frame::Stats { .. } => Frame::Stats {
            json: sh.stats.snapshot().to_json(),
        },
        Frame::Drain => {
            sh.draining.store(true, Ordering::SeqCst);
            sh.gate.freed.notify_all();
            Frame::Drain
        }
        Frame::Submit {
            backend,
            deadline_ms,
            rows,
            graph,
            data,
        } => {
            let bytes = data.len() * 8 + graph.len();
            match sh.admit(bytes) {
                Err(Refusal::Draining) => {
                    sh.stats.refusals.fetch_add(1, Ordering::Relaxed);
                    Frame::Error {
                        code: 6,
                        message: "SV006: server is draining; no new work accepted".into(),
                    }
                }
                Err(Refusal::Shed { retry_after_ms }) => {
                    sh.stats.shed.fetch_add(1, Ordering::Relaxed);
                    #[cfg(feature = "obs")]
                    csfma_obs::count_serve_shed();
                    Frame::Shed { retry_after_ms }
                }
                Ok(queue_depth) => {
                    sh.stats.record_queue_depth(queue_depth);
                    sh.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    #[cfg(feature = "obs")]
                    csfma_obs::count_serve_accepted();
                    let started = Instant::now();
                    let deadline = started
                        + if deadline_ms == 0 {
                            sh.cfg.default_deadline
                        } else {
                            Duration::from_millis(deadline_ms as u64)
                        };
                    let request_id = sh.next_request_id.fetch_add(1, Ordering::Relaxed);
                    // contain engine panics so `release` always runs and
                    // the client always gets a terminal response
                    let reply = catch_unwind(AssertUnwindSafe(|| {
                        engine::process_submit(
                            &sh.engine, &sh.stats, request_id, backend, rows, &graph, &data,
                            deadline, started,
                        )
                    }))
                    .unwrap_or_else(|_| {
                        sh.stats.panics_contained.fetch_add(1, Ordering::Relaxed);
                        Frame::Error {
                            code: 3,
                            message: "SV003: evaluation failed after containment".into(),
                        }
                    });
                    sh.release(bytes);
                    if matches!(reply, Frame::Result { .. }) {
                        sh.stats.results.fetch_add(1, Ordering::Relaxed);
                    } else if matches!(reply, Frame::Error { .. }) {
                        sh.stats.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    reply
                }
            }
        }
        // server-to-client frames arriving at the server are protocol
        // violations
        Frame::Result { .. }
        | Frame::Error { .. }
        | Frame::Shed { .. }
        | Frame::Deadline { .. } => {
            sh.stats.refusals.fetch_add(1, Ordering::Relaxed);
            let reply = Frame::Error {
                code: 2,
                message: "SV002: response-typed frame sent to the server".into(),
            };
            let _ = sock.write_all(&frame::encode(&reply));
            return false;
        }
    };
    let close_after = matches!(reply, Frame::Drain);
    if sock.write_all(&frame::encode(&reply)).is_err() {
        return false;
    }
    !close_after
}
