//! A small blocking client for the frame protocol.
//!
//! One [`Client`] wraps one connection; [`Client::submit`] is the
//! one-request-one-terminal-response contract from the client side: it
//! returns whichever of RESULT / SHED / DEADLINE / ERROR the server
//! chose, and only errors at the transport layer (connection torn, or
//! the server violated the protocol).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{self, Frame, DEFAULT_MAX_FRAME_LEN};

/// A blocking protocol client over one TCP connection.
pub struct Client {
    sock: TcpStream,
    buf: Vec<u8>,
}

/// Client-side failures (server responses are *not* errors — a SHED is
/// a successful protocol exchange).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes that do not decode.
    Protocol(frame::FrameError),
    /// The connection closed before a full response arrived.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection mid-response"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        Ok(Client {
            sock,
            buf: Vec::new(),
        })
    }

    /// Set the per-read timeout (a full response may span many reads).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<(), ClientError> {
        self.sock.set_read_timeout(t)?;
        Ok(())
    }

    /// Send one frame.
    pub fn send(&mut self, f: &Frame) -> Result<(), ClientError> {
        self.sock.write_all(&frame::encode(f))?;
        Ok(())
    }

    /// Receive one frame (blocking).
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        let mut scratch = [0u8; 64 * 1024];
        loop {
            match frame::decode(&self.buf, DEFAULT_MAX_FRAME_LEN) {
                Ok(Some((f, consumed))) => {
                    self.buf.drain(..consumed);
                    return Ok(f);
                }
                Ok(None) => {}
                Err(e) => return Err(ClientError::Protocol(e)),
            }
            match self.sock.read(&mut scratch) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Submit a batch and wait for the terminal response.
    pub fn submit(
        &mut self,
        backend: u8,
        deadline_ms: u32,
        rows: u32,
        graph: &str,
        data: &[f64],
    ) -> Result<Frame, ClientError> {
        self.send(&Frame::Submit {
            backend,
            deadline_ms,
            rows,
            graph: graph.to_string(),
            data: data.to_vec(),
        })?;
        self.recv()
    }

    /// Liveness probe; returns the echoed token.
    pub fn ping(&mut self, token: u64) -> Result<u64, ClientError> {
        self.send(&Frame::Ping { token })?;
        match self.recv()? {
            Frame::Ping { token } => Ok(token),
            _ => Err(ClientError::Protocol(frame::FrameError::Malformed(
                "ping answered with a non-ping frame",
            ))),
        }
    }

    /// Request a stats snapshot (JSON document).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.send(&Frame::Stats {
            json: String::new(),
        })?;
        match self.recv()? {
            Frame::Stats { json } => Ok(json),
            _ => Err(ClientError::Protocol(frame::FrameError::Malformed(
                "stats answered with a non-stats frame",
            ))),
        }
    }

    /// Ask the server to drain gracefully.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::Drain)?;
        match self.recv()? {
            Frame::Drain => Ok(()),
            _ => Err(ClientError::Protocol(frame::FrameError::Malformed(
                "drain answered with a non-drain frame",
            ))),
        }
    }
}
