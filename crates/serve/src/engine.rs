//! The evaluation engine behind a `SUBMIT` frame.
//!
//! One request flows: parse → compile through the sharded tape cache →
//! slab-wise robust evaluation with the deadline checked at every slab
//! boundary (slabs are whole numbers of scheduler chunks, so "chunk
//! boundary" in the protocol spec is literal) → FNV digest over the
//! output doubles, the same formula `csfma-run` prints, so a client can
//! cross-check a served digest against a local run bit-for-bit.
//!
//! Failure ladder (DESIGN.md §15): a check firing inside a chunk is the
//! robust executor's business and ends, at worst, in a quarantined NaN
//! row; a panic that escapes the executor is caught here and retried
//! with backoff; a slab that exhausts its retries degrades to a fully
//! quarantined slab — never a dropped connection, never a torn result.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use csfma_core::batch::CHUNK_ROWS;
#[cfg(feature = "fault-inject")]
use csfma_core::fault::{FaultPlan, FaultSite, FaultSpec};
use csfma_hls::{compile_cached, parse_program, RobustOptions, RowOutcome, TapeBackend};

use crate::frame::{backend, Frame};
use crate::stats::ServeStats;

/// How many times a slab whose evaluation *panicked through* the robust
/// executor is retried before it degrades to quarantined NaN rows.
pub const SLAB_RETRIES: u32 = 3;

/// Initial backoff after a contained slab panic; doubles per retry.
const RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// The FNV-1a digest `csfma-run` prints: byte-fold of each output
/// double, little-endian.
pub fn digest(values: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Map a wire backend tag to the engine backend.
pub fn backend_from_tag(tag: u8) -> Option<TapeBackend> {
    match tag {
        backend::BIT => Some(TapeBackend::BitAccurate),
        backend::F64 => Some(TapeBackend::F64),
        backend::ORACLE => Some(TapeBackend::Oracle),
        _ => None,
    }
}

/// Engine knobs, fixed at server construction.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads handed to the robust executor.
    pub workers: usize,
    /// Chunk-level retries inside the robust executor.
    pub chunk_retries: u32,
    /// Seed for server-side fault injection (`None` = run clean). Each
    /// request derives its own plan, so campaigns are reproducible per
    /// request id.
    pub fault_seed: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            chunk_retries: 2,
            fault_seed: None,
        }
    }
}

#[cfg(feature = "fault-inject")]
fn request_fault_plan(seed: u64, request_id: u64, rows: usize) -> FaultPlan {
    // a sparse transient sprinkle across sites and rows: enough to
    // exercise every rung under load without drowning the engine. Only
    // checker-covered sites are struck — TapeReg (a register-file upset)
    // is outside the self-checking envelope and needs ECC, so injecting
    // it server-side would manufacture silent corruption the protocol's
    // digest contract forbids (the fault campaign sweeps and reports it
    // honestly instead).
    let mut plan = FaultPlan::new(seed ^ request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let covered: Vec<FaultSite> = FaultSite::ALL
        .iter()
        .copied()
        .filter(|s| *s != FaultSite::TapeReg)
        .collect();
    let mut r = (seed.wrapping_add(request_id) % 13) as usize;
    let mut k = 0usize;
    while r < rows && k < 16 {
        let site = covered[(request_id as usize + k) % covered.len()];
        plan = plan.with_fault(FaultSpec::transient(site, r as u64));
        r += 13;
        k += 1;
    }
    plan
}

/// Outcome of one `SUBMIT`, already shaped as the response frame.
// the argument list mirrors the SUBMIT frame plus the connection's
// clock context; bundling them into a struct would just rename the
// same nine fields
#[allow(clippy::too_many_arguments)]
pub fn process_submit(
    cfg: &EngineConfig,
    stats: &ServeStats,
    request_id: u64,
    backend_tag: u8,
    rows: u32,
    graph: &str,
    data: &[f64],
    deadline: Instant,
    started: Instant,
) -> Frame {
    let bad = |msg: String| Frame::Error {
        code: 3,
        message: msg,
    };

    let Some(backend) = backend_from_tag(backend_tag) else {
        return bad(format!("SV003: unknown backend tag {backend_tag}"));
    };
    let g = match parse_program(graph) {
        Ok(g) => g,
        Err(e) => return bad(format!("SV003: graph does not parse: {e}")),
    };
    let tape = match compile_cached(&g) {
        Ok(t) => t,
        Err(e) => return bad(format!("SV003: graph refused by the compiler: {e}")),
    };
    let ni = tape.num_inputs();
    let no = tape.num_outputs();
    let rows = rows as usize;
    if ni == 0 || data.len() != rows * ni {
        return bad(format!(
            "SV003: row data holds {} doubles, expected rows*num_inputs = {}*{}",
            data.len(),
            rows,
            ni
        ));
    }

    #[cfg(feature = "fault-inject")]
    let plan = cfg
        .fault_seed
        .map(|seed| request_fault_plan(seed, request_id, rows));
    #[cfg(not(feature = "fault-inject"))]
    let _ = request_id;

    // slabs are whole chunks so the deadline lands exactly on the
    // scheduler's chunk boundaries
    let slab_rows = CHUNK_ROWS * cfg.workers.max(1);
    let mut out = Vec::with_capacity(rows * no);
    let mut quarantined = 0u64;
    let mut base = 0usize;
    while base < rows {
        if Instant::now() >= deadline {
            // discard partial work deterministically: the response
            // carries nothing of the slabs already computed
            stats
                .deadline
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            #[cfg(feature = "obs")]
            csfma_obs::count_serve_deadline();
            return Frame::Deadline {
                elapsed_ms: started.elapsed().as_millis() as u32,
            };
        }
        let len = slab_rows.min(rows - base);
        let slab = &data[base * ni..(base + len) * ni];
        let opts = RobustOptions {
            threads: cfg.workers,
            chunk_retries: cfg.chunk_retries,
            #[cfg(feature = "fault-inject")]
            fault: plan.as_ref(),
            #[cfg(not(feature = "fault-inject"))]
            fault: None,
        };
        let mut backoff = RETRY_BACKOFF;
        let mut attempt = 0u32;
        let slab_result = loop {
            match catch_unwind(AssertUnwindSafe(|| {
                tape.eval_batch_robust(backend, slab, &opts)
            })) {
                Ok(r) => break Some(r),
                Err(_) if attempt < SLAB_RETRIES => {
                    attempt += 1;
                    stats
                        .retries
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    #[cfg(feature = "obs")]
                    csfma_obs::count_serve_retries(1);
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
                Err(_) => break None,
            }
        };
        match slab_result {
            Some((vals, report)) => {
                let q = report
                    .outcomes
                    .iter()
                    .filter(|o| matches!(o, RowOutcome::Quarantined { .. }))
                    .count() as u64;
                quarantined += q;
                out.extend_from_slice(&vals);
            }
            None => {
                // retries exhausted: the slab degrades to quarantined
                // NaN rows instead of dropping the connection
                quarantined += len as u64;
                out.resize(out.len() + len * no, f64::NAN);
            }
        }
        base += len;
    }

    stats
        .quarantined_rows
        .fetch_add(quarantined, std::sync::atomic::Ordering::Relaxed);
    #[cfg(feature = "obs")]
    csfma_obs::count_serve_quarantined(quarantined);
    Frame::Result {
        digest: digest(&out),
        rows: rows as u32,
        quarantined: quarantined as u32,
        data: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::backend;

    const GRAPH: &str = "x1 = a*b + c;\nout y = x1*x1 + a;";

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(3600)
    }

    #[test]
    fn submit_round_trip_matches_local_eval() {
        let cfg = EngineConfig::default();
        let stats = ServeStats::default();
        let rows = 10usize;
        let g = parse_program(GRAPH).unwrap();
        let tape = compile_cached(&g).unwrap();
        let data: Vec<f64> = (0..rows * tape.num_inputs())
            .map(|i| i as f64 * 0.5 - 2.0)
            .collect();
        let t0 = Instant::now();
        let got = process_submit(
            &cfg,
            &stats,
            0,
            backend::BIT,
            rows as u32,
            GRAPH,
            &data,
            far(),
            t0,
        );
        let local = tape.eval_batch(TapeBackend::BitAccurate, &data, 1);
        match got {
            Frame::Result {
                digest: d,
                rows: r,
                quarantined,
                data: out,
            } => {
                assert_eq!(r, rows as u32);
                assert_eq!(quarantined, 0);
                assert_eq!(d, digest(&local));
                assert!(out
                    .iter()
                    .zip(local.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
            }
            other => panic!("expected Result, got {other:?}"),
        }
    }

    #[test]
    fn bad_requests_are_sv003_not_panics() {
        let cfg = EngineConfig::default();
        let stats = ServeStats::default();
        let t0 = Instant::now();
        for (tag, rows, graph, data) in [
            (backend::BIT, 1u32, "out y = ;", vec![1.0]),
            (backend::BIT, 2, GRAPH, vec![1.0]), // wrong data length
            (0x7F, 1, GRAPH, vec![1.0, 2.0, 3.0]),
        ] {
            match process_submit(&cfg, &stats, 0, tag, rows, graph, &data, far(), t0) {
                Frame::Error { code: 3, message } => {
                    assert!(message.starts_with("SV003"), "{message}")
                }
                other => panic!("expected SV003 error, got {other:?}"),
            }
        }
    }

    #[test]
    fn expired_deadline_returns_deadline_frame_with_no_partial_data() {
        let cfg = EngineConfig::default();
        let stats = ServeStats::default();
        let rows = 4 * CHUNK_ROWS;
        let g = parse_program(GRAPH).unwrap();
        let tape = compile_cached(&g).unwrap();
        let data = vec![1.5f64; rows * tape.num_inputs()];
        let t0 = Instant::now();
        let got = process_submit(
            &cfg,
            &stats,
            0,
            backend::BIT,
            rows as u32,
            GRAPH,
            &data,
            t0, // already expired
            t0,
        );
        assert!(matches!(got, Frame::Deadline { .. }), "{got:?}");
        assert_eq!(stats.snapshot().deadline, 1);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_faults_degrade_to_quarantine_or_recover_bit_identically() {
        let cfg = EngineConfig {
            fault_seed: Some(0xFA57),
            ..EngineConfig::default()
        };
        let stats = ServeStats::default();
        let rows = 2 * CHUNK_ROWS;
        let g = parse_program(GRAPH).unwrap();
        let tape = compile_cached(&g).unwrap();
        let data: Vec<f64> = (0..rows * tape.num_inputs())
            .map(|i| (i % 97) as f64 - 48.0)
            .collect();
        let t0 = Instant::now();
        let got = process_submit(
            &cfg,
            &stats,
            1,
            backend::BIT,
            rows as u32,
            GRAPH,
            &data,
            far(),
            t0,
        );
        let clean = tape.eval_batch(TapeBackend::BitAccurate, &data, 1);
        match got {
            Frame::Result {
                quarantined,
                data: out,
                ..
            } => {
                // every non-NaN output is bit-identical to a clean run;
                // quarantined rows are the only casualties
                let no = tape.num_outputs();
                let mut nan_rows = 0u32;
                for r in 0..rows {
                    let poisoned = (0..no).any(|k| out[r * no + k].is_nan());
                    if poisoned {
                        nan_rows += 1;
                    } else {
                        for k in 0..no {
                            assert_eq!(
                                out[r * no + k].to_bits(),
                                clean[r * no + k].to_bits(),
                                "row {r} differs from clean run"
                            );
                        }
                    }
                }
                assert_eq!(nan_rows, quarantined);
            }
            other => panic!("expected Result, got {other:?}"),
        }
    }
}
