//! The wire protocol: a length-prefixed binary frame codec.
//!
//! Every frame is `len:u32le` followed by `len` payload bytes, of which
//! the first is a type tag. `len` counts the tag, so the smallest legal
//! frame is 5 bytes on the wire. All multi-byte integers are
//! little-endian; row data is raw `f64::to_le_bytes`.
//!
//! The codec here is deliberately pure — no sockets, no clocks, no
//! global state — so the same functions serve the server's read loop,
//! the client, the torture tests, and the `serve_frame` fuzz target.
//! [`decode`] never panics on any input: every malformed byte sequence
//! maps to a structured [`FrameError`] (see `docs/SERVE.md` for the
//! full failure-semantics table).

use std::fmt;

/// Frame type tags (the first payload byte).
pub mod tag {
    /// Client → server: evaluate a batch (graph + rows).
    pub const SUBMIT: u8 = 0x01;
    /// Server → client: evaluation finished; digest + output rows.
    pub const RESULT: u8 = 0x02;
    /// Server → client: request refused; carries an `SV***` code.
    pub const ERROR: u8 = 0x03;
    /// Server → client: load shed; retry after the hinted delay.
    pub const SHED: u8 = 0x04;
    /// Server → client: deadline expired; partial work discarded.
    pub const DEADLINE: u8 = 0x05;
    /// Bidirectional liveness probe; the server echoes the token.
    pub const PING: u8 = 0x06;
    /// Client → server: begin graceful drain (also sent by SIGTERM).
    pub const DRAIN: u8 = 0x07;
    /// Client → server: request a stats snapshot; the server answers
    /// with a STATS frame carrying a JSON document.
    pub const STATS: u8 = 0x08;
}

/// Backend tags inside a `SUBMIT` frame.
pub mod backend {
    /// `TapeBackend::BitAccurate` (the default engine).
    pub const BIT: u8 = 0;
    /// `TapeBackend::F64` (host-double semantics).
    pub const F64: u8 = 1;
    /// `TapeBackend::Oracle` (trusted scalar soft-float stack).
    pub const ORACLE: u8 = 2;
}

/// Default cap on one frame's payload length (16 MiB). Connections can
/// be configured tighter; the codec refuses anything beyond the cap it
/// is handed before buffering the body.
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 << 20;

/// A decoded protocol frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Evaluate `rows` input vectors of `graph` on `backend`.
    Submit {
        /// One of the [`backend`] tags.
        backend: u8,
        /// Per-request deadline in milliseconds (`0` = server default).
        deadline_ms: u32,
        /// Number of input rows in `data`.
        rows: u32,
        /// UTF-8 datapath source text.
        graph: String,
        /// `rows * num_inputs` f64 values, little-endian.
        data: Vec<f64>,
    },
    /// Evaluation finished.
    Result {
        /// FNV-1a digest over the output doubles (`csfma-run` formula).
        digest: u64,
        /// Output rows that follow.
        rows: u32,
        /// How many of those rows are quarantined NaN rows.
        quarantined: u32,
        /// `rows * num_outputs` f64 values.
        data: Vec<f64>,
    },
    /// Request refused; `code` is the numeric part of an `SV***` id.
    Error {
        /// `1` for SV001, `2` for SV002, …
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Load shed before any work was done.
    Shed {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// Deadline expired at a chunk boundary; partial work discarded.
    Deadline {
        /// Wall time the request had consumed when it was cut off.
        elapsed_ms: u32,
    },
    /// Liveness probe (echoed back verbatim).
    Ping {
        /// Opaque token chosen by the sender.
        token: u64,
    },
    /// Begin graceful drain.
    Drain,
    /// Stats request (empty body) or response (JSON body).
    Stats {
        /// Empty in a request; a JSON document in a response.
        json: String,
    },
}

/// Why a byte sequence failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds the connection's frame-size limit
    /// (diagnostic SV001).
    TooLarge {
        /// Declared payload length.
        declared: usize,
        /// The limit it exceeded.
        limit: usize,
    },
    /// The payload's type tag is not in [`tag`] (SV002).
    UnknownType(u8),
    /// The payload is shorter than its type's fixed fields, a contained
    /// length field points past the end, or trailing bytes follow a
    /// fully-parsed body (SV002).
    Malformed(&'static str),
    /// A text field is not valid UTF-8 (SV002).
    BadUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { declared, limit } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            FrameError::UnknownType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::BadUtf8 => write!(f, "text field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, data: &[f64]) {
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encode a frame, length prefix included.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut body = Vec::new();
    match frame {
        Frame::Submit {
            backend,
            deadline_ms,
            rows,
            graph,
            data,
        } => {
            body.push(tag::SUBMIT);
            body.push(*backend);
            put_u32(&mut body, *deadline_ms);
            put_u32(&mut body, *rows);
            put_u32(&mut body, graph.len() as u32);
            body.extend_from_slice(graph.as_bytes());
            put_f64s(&mut body, data);
        }
        Frame::Result {
            digest,
            rows,
            quarantined,
            data,
        } => {
            body.push(tag::RESULT);
            body.extend_from_slice(&digest.to_le_bytes());
            put_u32(&mut body, *rows);
            put_u32(&mut body, *quarantined);
            put_f64s(&mut body, data);
        }
        Frame::Error { code, message } => {
            body.push(tag::ERROR);
            body.extend_from_slice(&code.to_le_bytes());
            body.extend_from_slice(message.as_bytes());
        }
        Frame::Shed { retry_after_ms } => {
            body.push(tag::SHED);
            put_u32(&mut body, *retry_after_ms);
        }
        Frame::Deadline { elapsed_ms } => {
            body.push(tag::DEADLINE);
            put_u32(&mut body, *elapsed_ms);
        }
        Frame::Ping { token } => {
            body.push(tag::PING);
            body.extend_from_slice(&token.to_le_bytes());
        }
        Frame::Drain => body.push(tag::DRAIN),
        Frame::Stats { json } => {
            body.push(tag::STATS);
            body.extend_from_slice(json.as_bytes());
        }
    }
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(FrameError::Malformed(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn rest_f64s(&mut self, what: &'static str) -> Result<Vec<f64>, FrameError> {
        let rest = &self.buf[self.pos..];
        if !rest.len().is_multiple_of(8) {
            return Err(FrameError::Malformed(what));
        }
        self.pos = self.buf.len();
        Ok(rest
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn rest_utf8(&mut self) -> Result<String, FrameError> {
        let rest = &self.buf[self.pos..];
        self.pos = self.buf.len();
        String::from_utf8(rest.to_vec()).map_err(|_| FrameError::BadUtf8)
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos != self.buf.len() {
            return Err(FrameError::Malformed("trailing bytes after frame body"));
        }
        Ok(())
    }
}

/// Decode one frame's payload (the bytes after the length prefix).
pub fn decode_payload(payload: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let t = c.u8("empty payload")?;
    let frame = match t {
        tag::SUBMIT => {
            let backend = c.u8("submit backend")?;
            let deadline_ms = c.u32("submit deadline")?;
            let rows = c.u32("submit row count")?;
            let graph_len = c.u32("submit graph length")? as usize;
            let graph = String::from_utf8(c.take(graph_len, "submit graph text")?.to_vec())
                .map_err(|_| FrameError::BadUtf8)?;
            let data = c.rest_f64s("submit row data not a whole number of f64s")?;
            Frame::Submit {
                backend,
                deadline_ms,
                rows,
                graph,
                data,
            }
        }
        tag::RESULT => {
            let digest = c.u64("result digest")?;
            let rows = c.u32("result row count")?;
            let quarantined = c.u32("result quarantine count")?;
            let data = c.rest_f64s("result row data not a whole number of f64s")?;
            Frame::Result {
                digest,
                rows,
                quarantined,
                data,
            }
        }
        tag::ERROR => {
            let code = c.u16("error code")?;
            let message = c.rest_utf8()?;
            Frame::Error { code, message }
        }
        tag::SHED => Frame::Shed {
            retry_after_ms: c.u32("shed retry hint")?,
        },
        tag::DEADLINE => Frame::Deadline {
            elapsed_ms: c.u32("deadline elapsed time")?,
        },
        tag::PING => Frame::Ping {
            token: c.u64("ping token")?,
        },
        tag::DRAIN => Frame::Drain,
        tag::STATS => Frame::Stats {
            json: c.rest_utf8()?,
        },
        other => return Err(FrameError::UnknownType(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Incremental decode from a receive buffer.
///
/// Returns `Ok(None)` when `buf` holds only a partial frame (read more
/// bytes), or `Ok(Some((frame, consumed)))` — the caller drains
/// `consumed` bytes and loops. A declared length beyond `max_len` is
/// rejected *before* waiting for the body, so an attacker cannot make
/// the server buffer unbounded data.
pub fn decode(buf: &[u8], max_len: usize) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let declared = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if declared > max_len {
        return Err(FrameError::TooLarge {
            declared,
            limit: max_len,
        });
    }
    if declared == 0 {
        return Err(FrameError::Malformed("zero-length frame"));
    }
    if buf.len() - 4 < declared {
        return Ok(None);
    }
    let frame = decode_payload(&buf[4..4 + declared])?;
    Ok(Some((frame, 4 + declared)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = encode(&f);
        let (got, consumed) = decode(&bytes, DEFAULT_MAX_FRAME_LEN)
            .expect("decodes")
            .expect("complete");
        assert_eq!(consumed, bytes.len());
        assert_eq!(got, f);
    }

    #[test]
    fn every_frame_kind_round_trips() {
        roundtrip(Frame::Submit {
            backend: backend::BIT,
            deadline_ms: 250,
            rows: 2,
            graph: "out y = a*b + c;".into(),
            data: vec![1.0, -2.5, f64::NAN.to_bits() as f64, 0.0, 3.25, 9.0],
        });
        roundtrip(Frame::Result {
            digest: 0xDEAD_BEEF_CAFE_F00D,
            rows: 1,
            quarantined: 1,
            data: vec![f64::INFINITY, -0.0],
        });
        roundtrip(Frame::Error {
            code: 3,
            message: "SV003: no sink".into(),
        });
        roundtrip(Frame::Shed { retry_after_ms: 50 });
        roundtrip(Frame::Deadline { elapsed_ms: 107 });
        roundtrip(Frame::Ping { token: 7 });
        roundtrip(Frame::Drain);
        roundtrip(Frame::Stats {
            json: String::new(),
        });
        roundtrip(Frame::Stats {
            json: "{\"accepted\":3}".into(),
        });
    }

    #[test]
    fn partial_frames_ask_for_more_bytes() {
        let bytes = encode(&Frame::Ping { token: 99 });
        for cut in 0..bytes.len() {
            assert_eq!(decode(&bytes[..cut], 1024), Ok(None), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_declaration_is_rejected_before_the_body_arrives() {
        // only the 4-byte prefix has arrived; the limit check must not
        // wait for the (never-coming) body
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1_000_000u32).to_le_bytes());
        assert_eq!(
            decode(&buf, 1024),
            Err(FrameError::TooLarge {
                declared: 1_000_000,
                limit: 1024
            })
        );
    }

    #[test]
    fn malformed_bodies_are_structured_errors_not_panics() {
        // zero-length frame
        assert!(matches!(
            decode(&0u32.to_le_bytes(), 1024),
            Err(FrameError::Malformed(_))
        ));
        // unknown tag
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.push(0x7F);
        assert_eq!(decode(&buf, 1024), Err(FrameError::UnknownType(0x7F)));
        // submit whose graph length points past the end
        let mut body = vec![tag::SUBMIT, backend::BIT];
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&400u32.to_le_bytes()); // graph_len > remaining
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert!(matches!(decode(&buf, 1024), Err(FrameError::Malformed(_))));
        // ping with trailing garbage
        let mut body = vec![tag::PING];
        body.extend_from_slice(&[0u8; 9]);
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert!(matches!(decode(&buf, 1024), Err(FrameError::Malformed(_))));
        // non-utf8 error message
        let mut body = vec![tag::ERROR, 1, 0];
        body.extend_from_slice(&[0xFF, 0xFE]);
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert_eq!(decode(&buf, 1024), Err(FrameError::BadUtf8));
    }
}
