//! # csfma-serve — a fault-contained batch-evaluation server
//!
//! The workspace's execution engine, put behind a socket with the
//! robustness story (DESIGN.md §10) extended to the service boundary
//! (DESIGN.md §15): per-request **deadlines** enforced at scheduler
//! chunk boundaries, a bounded **admission queue** with load shedding,
//! bounded **retry-with-backoff** so injected transient faults degrade
//! to quarantined NaN rows instead of dropped connections, per-connection
//! frame-size/rate limits, and **graceful drain** on SIGTERM/ctrl-c.
//!
//! The invariant every layer here defends: *every submitted frame gets
//! exactly one terminal response* — `RESULT`, `SHED`, `DEADLINE`, or a
//! structured `SV***` `ERROR` — and no client, however malformed, slow,
//! or unlucky, can panic the accept loop or corrupt another client's
//! rows. The wire protocol and failure-semantics table live in
//! `docs/SERVE.md`; the std-only concurrency model (no async runtime —
//! the workspace builds offline) is described in [`server`].
//!
//! ```no_run
//! use csfma_serve::{Client, Frame, ServeConfig, Server, frame::backend};
//!
//! let server = Server::bind(ServeConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.handle();
//! std::thread::spawn(move || server.run());
//!
//! let mut c = Client::connect(addr).unwrap();
//! let reply = c
//!     .submit(backend::BIT, 0, 1, "out y = a*b + c;", &[1.5, 2.0, 0.25])
//!     .unwrap();
//! assert!(matches!(reply, Frame::Result { .. }));
//! handle.drain();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod frame;
pub mod server;
pub mod stats;

pub use client::{Client, ClientError};
pub use engine::{backend_from_tag, digest, EngineConfig};
pub use frame::{Frame, FrameError, DEFAULT_MAX_FRAME_LEN};
#[cfg(unix)]
pub use server::install_signal_drain;
pub use server::{ServeConfig, Server, ServerHandle};
pub use stats::{ServeStats, StatsSnapshot, QUEUE_DEPTH_BUCKETS};
