//! Normalized graph view the analysis passes operate on.
//!
//! `csfma-verify` sits below `csfma-hls`, so it cannot see the `Cdfg`
//! type directly. Instead the passes consume this small, explicit view:
//! one [`Node`] per operation carrying exactly the facts the checkers
//! need — argument edges, per-port and result domains, latency, a
//! resource class tag, and (for conversion ops) what the conversion
//! does. `csfma-hls` provides the `Cdfg → Graph` adapter; tests can
//! also build views by hand to seed specific violations.

/// Value domain carried on an edge: IEEE 754 binary interchange or the
/// redundant carry-save transport format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// IEEE 754 packed operand.
    Ieee,
    /// Carry-save / partial-carry-save redundant operand.
    Cs,
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Domain::Ieee => write!(f, "IEEE"),
            Domain::Cs => write!(f, "CS"),
        }
    }
}

/// Structural role of a node, used by the dead-code and sink rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// External input; having no users is legal.
    Source,
    /// Ordinary operation; must be transitively used by a sink.
    Interior,
    /// Output; anchors liveness.
    Sink,
}

/// What a conversion node converts *to* — used to spot conversion pairs
/// that cancel (`IeeeToCs` feeding `CsToIeee` of the same unit format).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conversion {
    /// Name of the unit format involved (e.g. `"pcs-55-zd"`).
    pub unit: String,
    /// Domain the conversion produces.
    pub to: Domain,
}

/// One operation in the normalized view.
#[derive(Clone, Debug)]
pub struct Node {
    /// Short operation label for diagnostics (e.g. `Mul`, `Fma(Pcs)`).
    pub label: String,
    /// Indices of argument-producing nodes, in port order.
    pub args: Vec<usize>,
    /// Domain each argument port expects; length defines the arity.
    pub ports: Vec<Domain>,
    /// Domain of the produced value.
    pub result: Domain,
    /// Cycles from start until the result is available.
    pub latency: u32,
    /// Resource class tag (`"mul"`, `"add"`, …) or `"free"` when the
    /// operation consumes no limited unit.
    pub resource: &'static str,
    /// Present iff this node is a format conversion.
    pub conv: Option<Conversion>,
    /// Source / interior / sink.
    pub role: Role,
}

impl Node {
    /// A node with no arguments, no latency and the `free` resource
    /// class; callers adjust fields from there.
    pub fn new(label: impl Into<String>, result: Domain) -> Self {
        Node {
            label: label.into(),
            args: Vec::new(),
            ports: Vec::new(),
            result,
            latency: 0,
            resource: "free",
            conv: None,
            role: Role::Interior,
        }
    }

    /// Set argument edges and the domains their ports expect.
    pub fn with_args(mut self, args: Vec<usize>, ports: Vec<Domain>) -> Self {
        self.args = args;
        self.ports = ports;
        self
    }

    /// Set the latency in cycles.
    pub fn with_latency(mut self, latency: u32) -> Self {
        self.latency = latency;
        self
    }

    /// Set the resource class tag.
    pub fn with_resource(mut self, resource: &'static str) -> Self {
        self.resource = resource;
        self
    }

    /// Mark the node as a conversion.
    pub fn with_conversion(mut self, unit: impl Into<String>, to: Domain) -> Self {
        self.conv = Some(Conversion {
            unit: unit.into(),
            to,
        });
        self
    }

    /// Set the structural role.
    pub fn with_role(mut self, role: Role) -> Self {
        self.role = role;
        self
    }
}

/// A whole datapath in normalized form. Nodes are expected in
/// topological order (argument indices smaller than user indices);
/// violations of that expectation are themselves reported by the
/// dataflow pass rather than assumed away.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// The operations, in (claimed) topological order.
    pub nodes: Vec<Node>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Append a node, returning its index.
    pub fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }
}

/// A schedule as the hazard pass sees it: a start cycle per node (or
/// `None` where the scheduler left a node out) plus the claimed total
/// length in cycles.
#[derive(Clone, Debug)]
pub struct ScheduleView {
    /// Start cycle per node, parallel to `Graph::nodes`.
    pub start: Vec<Option<u32>>,
    /// Claimed makespan in cycles.
    pub length: u32,
}
