//! Tape translation validation — the `T*` rules.
//!
//! `csfma-hls` lowers a checked CDFG through an optimizer (fold / CSE /
//! DCE / pressure reordering) and a slot-reusing linear-scan register
//! allocator into a flat instruction tape. Every one of those rewrites
//! is a chance to miscompile, and the `W*`/`D*` gate only ever saw the
//! *source* graph. This pass is the second verification layer: given a
//! normalized view of the compiled tape and of the source graph it
//! claims to implement, [`check_tape`] re-derives what each instruction
//! *must* compute from its recorded provenance and reports any
//! divergence as a structured diagnostic instead of wrong bits.
//!
//! The shape follows Cranelift's `verify_function`: an independent
//! checker that trusts neither the optimizer nor the lowering, only the
//! source graph and the per-instruction provenance table. Because this
//! crate sits *below* `csfma-hls` in the dependency graph it cannot see
//! the real `Tape`/`Cdfg` types; the hls crate adapts them into
//! [`TapeView`]/[`SourceView`] (same pattern as [`crate::graph`]).
//!
//! What is checked, and which rule fires:
//!
//! * **T001** — every register slot is written before it is read and
//!   all slot indices stay inside the declared register files (catches
//!   def-before-use breaks under the dead-slot reuse of the allocator).
//! * **T002** — every instruction's provenance names an in-range source
//!   node of a compatible operation class (an `Add` instruction must
//!   descend from an `Add` node; a `LoadConst` may descend from a
//!   foldable arithmetic node, but never from an `Input`).
//! * **T003** — the tape's positional input/output layout (names,
//!   declared order, arity) matches the source graph, and every output
//!   is stored exactly once.
//! * **T004** — carry-save values are consumed in the CS format (PCS vs
//!   FCS) they were produced in, and instruction format tags agree with
//!   their source nodes.
//! * **T005** — symbolic replay: each operand's *value ancestry* (a
//!   structural hash of the source subtree it should carry) matches the
//!   hash actually sitting in the register slot. Operand swaps, slot
//!   clobbers and read-after-free under slot reuse all surface here.
//! * **T006** — a folded constant is bit-identical to re-evaluating the
//!   all-constant source subtree its provenance points at.

use crate::diag::{Diagnostic, Rule, Span};

/// Carry-save transport family of a value or instruction. Mirrors
/// `csfma_hls::FmaKind` without depending on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsKind {
    /// Packed carry-save (explicit carries at fixed spacing).
    Pcs,
    /// Full carry-save (one carry per digit).
    Fcs,
}

impl std::fmt::Display for CsKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsKind::Pcs => write!(f, "PCS"),
            CsKind::Fcs => write!(f, "FCS"),
        }
    }
}

/// Normalized source-graph operation (mirrors `csfma_hls::Op`).
#[derive(Clone, Debug, PartialEq)]
pub enum SrcOp {
    /// Named external input.
    Input(String),
    /// Literal constant.
    Const(f64),
    /// IEEE addition.
    Add,
    /// IEEE subtraction.
    Sub,
    /// IEEE multiplication.
    Mul,
    /// IEEE division.
    Div,
    /// IEEE negation.
    Neg,
    /// Carry-save fused multiply-add: `acc + (±b) * mulc`.
    Fma {
        /// Transport format of the unit.
        kind: CsKind,
        /// Negate the IEEE `B` input.
        negate_b: bool,
    },
    /// IEEE → carry-save conversion.
    IeeeToCs(CsKind),
    /// Carry-save → IEEE resolution (normalize + round).
    CsToIeee(CsKind),
    /// Named external output (value pass-through).
    Output(String),
}

/// One normalized source-graph node.
#[derive(Clone, Debug, PartialEq)]
pub struct SrcNode {
    /// The operation.
    pub op: SrcOp,
    /// Argument node ids (producers, earlier in the vector).
    pub args: Vec<usize>,
}

/// Normalized view of the source CDFG a tape claims to implement.
/// `csfma-hls` adapts its `Cdfg` into this.
#[derive(Clone, Debug, Default)]
pub struct SourceView {
    /// Nodes in topological (definition) order.
    pub nodes: Vec<SrcNode>,
}

/// Normalized tape instruction (mirrors `csfma_hls::Instr`). Register
/// operands index the binary64 bank (`r*`) or the carry-save bank
/// (`c*`); both banks reuse slots once values die.
#[derive(Clone, Debug, PartialEq)]
pub enum TapeInstr {
    /// `r[dst] = row[input]`
    LoadInput {
        /// Destination binary64 slot.
        dst: u32,
        /// Positional input index.
        input: u32,
    },
    /// `r[dst] = consts[idx]`
    LoadConst {
        /// Destination binary64 slot.
        dst: u32,
        /// Constant-pool index.
        idx: u32,
    },
    /// `r[dst] = r[a] + r[b]`
    Add {
        /// Destination slot.
        dst: u32,
        /// Left operand.
        a: u32,
        /// Right operand.
        b: u32,
    },
    /// `r[dst] = r[a] - r[b]`
    Sub {
        /// Destination slot.
        dst: u32,
        /// Left operand.
        a: u32,
        /// Right operand.
        b: u32,
    },
    /// `r[dst] = r[a] * r[b]`
    Mul {
        /// Destination slot.
        dst: u32,
        /// Left operand.
        a: u32,
        /// Right operand.
        b: u32,
    },
    /// `r[dst] = r[a] / r[b]`
    Div {
        /// Destination slot.
        dst: u32,
        /// Dividend.
        a: u32,
        /// Divisor.
        b: u32,
    },
    /// `r[dst] = -r[a]`
    Neg {
        /// Destination slot.
        dst: u32,
        /// Operand.
        a: u32,
    },
    /// `c[dst] = fma(c[acc], ±r[b], c[mulc])`
    Fma {
        /// Transport format of the unit.
        kind: CsKind,
        /// Negate the IEEE `B` input.
        negate_b: bool,
        /// Destination carry-save slot.
        dst: u32,
        /// Addend (carry-save).
        acc: u32,
        /// `B` multiplicand (binary64).
        b: u32,
        /// Chained multiplicand (carry-save).
        mulc: u32,
    },
    /// `c[dst] = ieee_to_cs(r[src])`
    IeeeToCs {
        /// Target transport format.
        kind: CsKind,
        /// Destination carry-save slot.
        dst: u32,
        /// Source binary64 slot.
        src: u32,
    },
    /// `r[dst] = cs_to_ieee(c[src])`
    CsToIeee {
        /// Destination binary64 slot.
        dst: u32,
        /// Source carry-save slot.
        src: u32,
    },
    /// `out[output] = r[src]`
    Store {
        /// Positional output index.
        output: u32,
        /// Source binary64 slot.
        src: u32,
    },
}

/// Normalized view of a compiled tape. `csfma-hls` adapts its `Tape`
/// into this.
#[derive(Clone, Debug, Default)]
pub struct TapeView {
    /// Instructions in execution order.
    pub instrs: Vec<TapeInstr>,
    /// Per-instruction provenance: the **source-graph** node each
    /// instruction was lowered from (already mapped back through the
    /// optimizer's origin map).
    pub provenance: Vec<u32>,
    /// Positional input names.
    pub inputs: Vec<String>,
    /// Positional output names.
    pub outputs: Vec<String>,
    /// Constant pool (raw, non-canonicalized bits).
    pub consts: Vec<f64>,
    /// Size of the binary64 register file.
    pub n_f64_regs: usize,
    /// Size of the carry-save register file.
    pub n_cs_regs: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Incremental FNV-1a, used for the structural value-ancestry hashes.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// Structural value hash of every source node, computed in one forward
/// pass. Two nodes hash equal iff their value-producing subtrees are
/// structurally identical — exactly the CSE merge criterion — so a
/// replayed tape operand can be compared against the hash of the source
/// argument it must carry, and CSE/folding never cause false alarms.
/// `Output` nodes hash as their argument (they are pass-throughs), so
/// raw argument ids can be hashed without resolving chains.
///
/// All-constant subtrees (per `consts`) hash as a `Const` of their
/// folded value instead of structurally: constant folding can collapse
/// *structurally different* subtrees (`c - c` and `d - d` both fold to
/// `0.0`) onto one representative via CSE, and only value identity — not
/// structure — is preserved for them. The `T006` check separately pins
/// pool bits to the re-evaluated subtree, so this loses no detection for
/// constants that actually differ.
fn value_hashes(nodes: &[SrcNode], consts: &[Option<f64>]) -> Vec<u64> {
    let mut h = vec![0u64; nodes.len()];
    for id in 0..nodes.len() {
        let node = &nodes[id];
        // only consider backward edges; a malformed forward edge hashes
        // as 0 (the gate rejects such graphs before a tape ever exists)
        let arg_hash = |k: usize| -> u64 {
            node.args
                .get(k)
                .and_then(|&a| (a < id).then(|| h[a]))
                .unwrap_or(0)
        };
        if let SrcOp::Output(_) = node.op {
            h[id] = arg_hash(0);
            continue;
        }
        if let Some(v) = consts[id] {
            let mut f = Fnv::new();
            f.byte(1);
            f.u64(v.to_bits());
            h[id] = f.0;
            continue;
        }
        let mut f = Fnv::new();
        match &node.op {
            SrcOp::Input(name) => {
                f.byte(0);
                f.bytes(name.as_bytes());
            }
            SrcOp::Const(v) => {
                f.byte(1);
                f.u64(v.to_bits());
            }
            SrcOp::Add => f.byte(2),
            SrcOp::Sub => f.byte(3),
            SrcOp::Mul => f.byte(4),
            SrcOp::Div => f.byte(5),
            SrcOp::Neg => f.byte(6),
            SrcOp::Fma { kind, negate_b } => {
                f.byte(7);
                f.byte(*kind as u8);
                f.byte(*negate_b as u8);
            }
            SrcOp::IeeeToCs(kind) => {
                f.byte(8);
                f.byte(*kind as u8);
            }
            SrcOp::CsToIeee(kind) => {
                f.byte(9);
                f.byte(*kind as u8);
            }
            SrcOp::Output(_) => unreachable!("handled above"),
        }
        for k in 0..node.args.len() {
            f.u64(arg_hash(k));
        }
        h[id] = f.0;
    }
    h
}

/// Host-double evaluation of every all-constant subtree, forward pass.
/// `None` where any transitive leaf is an `Input` (or the op is not
/// foldable). The optimizer only folds when the host result bit-equals
/// the hosted soft-float result, and it folds *with* host arithmetic, so
/// replaying host arithmetic over the full subtree reproduces the folded
/// value bit-for-bit.
fn const_values(nodes: &[SrcNode]) -> Vec<Option<f64>> {
    let mut c: Vec<Option<f64>> = vec![None; nodes.len()];
    for id in 0..nodes.len() {
        let node = &nodes[id];
        let arg =
            |k: usize| -> Option<f64> { node.args.get(k).and_then(|&a| (a < id).then(|| c[a])?) };
        let val = (|| {
            Some(match &node.op {
                SrcOp::Const(v) => *v,
                SrcOp::Add => arg(0)? + arg(1)?,
                SrcOp::Sub => arg(0)? - arg(1)?,
                SrcOp::Mul => arg(0)? * arg(1)?,
                SrcOp::Div => arg(0)? / arg(1)?,
                SrcOp::Neg => -arg(0)?,
                SrcOp::Output(_) => arg(0)?,
                _ => return None,
            })
        })();
        c[id] = val;
    }
    c
}

/// Replay state of one register bank: the structural value hash each
/// slot currently holds (plus the CS format for the carry-save bank).
struct Bank<T: Copy> {
    slots: Vec<Option<T>>,
    name: &'static str,
}

impl<T: Copy> Bank<T> {
    fn new(n: usize, name: &'static str) -> Self {
        Bank {
            slots: vec![None; n],
            name,
        }
    }

    /// Read a slot; `None` (with a T001 diagnostic) when the slot is
    /// out of range or was never written.
    fn read(&self, slot: u32, i: usize, diags: &mut Vec<Diagnostic>) -> Option<T> {
        match self.slots.get(slot as usize) {
            Some(Some(v)) => Some(*v),
            Some(None) => {
                diags.push(Diagnostic::error(
                    Rule::TapeUninitializedSlot,
                    Span::Instr(i),
                    format!("reads {} slot {slot} before any write", self.name),
                ));
                None
            }
            None => {
                diags.push(Diagnostic::error(
                    Rule::TapeUninitializedSlot,
                    Span::Instr(i),
                    format!(
                        "{} slot {slot} out of range (register file holds {})",
                        self.name,
                        self.slots.len()
                    ),
                ));
                None
            }
        }
    }

    fn write(&mut self, slot: u32, v: T, i: usize, diags: &mut Vec<Diagnostic>) {
        match self.slots.get_mut(slot as usize) {
            Some(s) => *s = Some(v),
            None => diags.push(Diagnostic::error(
                Rule::TapeUninitializedSlot,
                Span::Instr(i),
                format!(
                    "writes {} slot {slot} out of range (register file holds {})",
                    self.name,
                    self.slots.len()
                ),
            )),
        }
    }
}

/// Short human name of a source op, for diagnostics.
fn src_op_name(op: &SrcOp) -> &'static str {
    match op {
        SrcOp::Input(_) => "Input",
        SrcOp::Const(_) => "Const",
        SrcOp::Add => "Add",
        SrcOp::Sub => "Sub",
        SrcOp::Mul => "Mul",
        SrcOp::Div => "Div",
        SrcOp::Neg => "Neg",
        SrcOp::Fma { .. } => "Fma",
        SrcOp::IeeeToCs(_) => "IeeeToCs",
        SrcOp::CsToIeee(_) => "CsToIeee",
        SrcOp::Output(_) => "Output",
    }
}

/// Validate a compiled tape against the source graph it claims to
/// implement. Returns structured findings (`T001`–`T006`); an empty
/// vector means the translation is provably layout- and
/// ancestry-preserving. Never panics, even on adversarial views.
pub fn check_tape(tape: &TapeView, src: &SourceView) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let nodes = &src.nodes;

    // ---- T003: positional input/output layout --------------------------
    let mut want_inputs: Vec<&str> = Vec::new();
    let mut want_outputs: Vec<&str> = Vec::new();
    for n in nodes {
        match &n.op {
            // lowering dedups repeated input names at first use
            SrcOp::Input(name) if !want_inputs.contains(&name.as_str()) => {
                want_inputs.push(name);
            }
            SrcOp::Output(name) => want_outputs.push(name),
            _ => {}
        }
    }
    let got_inputs: Vec<&str> = tape.inputs.iter().map(String::as_str).collect();
    if got_inputs != want_inputs {
        diags.push(Diagnostic::error(
            Rule::TapeIoMismatch,
            Span::Global,
            format!("tape inputs {got_inputs:?} != source declaration order {want_inputs:?}"),
        ));
    }
    let got_outputs: Vec<&str> = tape.outputs.iter().map(String::as_str).collect();
    if got_outputs != want_outputs {
        diags.push(Diagnostic::error(
            Rule::TapeIoMismatch,
            Span::Global,
            format!("tape outputs {got_outputs:?} != source declaration order {want_outputs:?}"),
        ));
    }

    // ---- T002: the provenance table must cover the instruction stream --
    if tape.provenance.len() != tape.instrs.len() {
        diags.push(Diagnostic::error(
            Rule::TapeProvenanceBroken,
            Span::Global,
            format!(
                "provenance table covers {} of {} instructions",
                tape.provenance.len(),
                tape.instrs.len()
            ),
        ));
        // without a usable provenance table the replay below would
        // mis-attribute every instruction; the layout findings stand
        return diags;
    }

    let consts = const_values(nodes);
    let hashes = value_hashes(nodes, &consts);

    let mut f64_bank: Bank<u64> = Bank::new(tape.n_f64_regs, "f64");
    let mut cs_bank: Bank<(u64, CsKind)> = Bank::new(tape.n_cs_regs, "cs");
    let mut stored = vec![0usize; tape.outputs.len()];

    for (i, ins) in tape.instrs.iter().enumerate() {
        let p = tape.provenance[i] as usize;
        let Some(node) = nodes.get(p) else {
            diags.push(Diagnostic::error(
                Rule::TapeProvenanceBroken,
                Span::Instr(i),
                format!(
                    "provenance node {p} out of range ({} source nodes)",
                    nodes.len()
                ),
            ));
            continue;
        };
        // structural hash the destination will carry; on any local
        // mismatch the slot still receives the *expected* hash so one
        // defect does not cascade into every consumer
        let result_hash = hashes[p];
        // hash each operand position must carry, per the source node
        let want = |k: usize| -> u64 {
            node.args
                .get(k)
                .and_then(|&a| hashes.get(a).copied())
                .unwrap_or(0)
        };
        let op_mismatch = |diags: &mut Vec<Diagnostic>, got: &str| {
            diags.push(Diagnostic::error(
                Rule::TapeProvenanceBroken,
                Span::Instr(i),
                format!(
                    "{got} instruction descends from node {p} ({})",
                    src_op_name(&node.op)
                ),
            ));
        };
        // compare a read operand's ancestry hash against the source edge
        let ancestry = |diags: &mut Vec<Diagnostic>, got: Option<u64>, wanted: u64, what: &str| {
            if let Some(g) = got {
                if g != wanted {
                    diags.push(Diagnostic::error(
                        Rule::TapeValueFlowMismatch,
                        Span::Instr(i),
                        format!(
                            "{what} operand carries a different value ancestry than \
                             source node {p} requires (operand swap, clobbered slot, \
                             or read-after-free)"
                        ),
                    ));
                }
            }
        };

        match ins {
            TapeInstr::LoadInput { dst, input } => {
                match &node.op {
                    SrcOp::Input(name) => match tape.inputs.get(*input as usize) {
                        Some(n) if n == name => {}
                        Some(n) => diags.push(Diagnostic::error(
                            Rule::TapeIoMismatch,
                            Span::Instr(i),
                            format!(
                                "loads input {input} ({n:?}) but source node {p} reads {name:?}"
                            ),
                        )),
                        None => diags.push(Diagnostic::error(
                            Rule::TapeIoMismatch,
                            Span::Instr(i),
                            format!("input index {input} out of range"),
                        )),
                    },
                    _ => op_mismatch(&mut diags, "LoadInput"),
                }
                f64_bank.write(*dst, result_hash, i, &mut diags);
            }
            TapeInstr::LoadConst { dst, idx } => {
                match &node.op {
                    SrcOp::Const(_)
                    | SrcOp::Add
                    | SrcOp::Sub
                    | SrcOp::Mul
                    | SrcOp::Div
                    | SrcOp::Neg => match (tape.consts.get(*idx as usize), consts[p]) {
                        (Some(got), Some(wanted)) => {
                            if got.to_bits() != wanted.to_bits() {
                                diags.push(Diagnostic::error(
                                    Rule::TapeConstMismatch,
                                    Span::Instr(i),
                                    format!(
                                        "constant pool entry {idx} is {got:?} but the \
                                         all-constant subtree at source node {p} \
                                         evaluates to {wanted:?}"
                                    ),
                                ));
                            }
                        }
                        (None, _) => diags.push(Diagnostic::error(
                            Rule::TapeConstMismatch,
                            Span::Instr(i),
                            format!(
                                "constant index {idx} out of range (pool holds {})",
                                tape.consts.len()
                            ),
                        )),
                        (_, None) => diags.push(Diagnostic::error(
                            Rule::TapeProvenanceBroken,
                            Span::Instr(i),
                            format!(
                                "LoadConst descends from node {p} ({}) whose subtree \
                                 is not all-constant — nothing could have folded it",
                                src_op_name(&node.op)
                            ),
                        )),
                    },
                    _ => op_mismatch(&mut diags, "LoadConst"),
                }
                f64_bank.write(*dst, result_hash, i, &mut diags);
            }
            TapeInstr::Add { dst, a, b }
            | TapeInstr::Sub { dst, a, b }
            | TapeInstr::Mul { dst, a, b }
            | TapeInstr::Div { dst, a, b } => {
                let (instr_name, matches) = match ins {
                    TapeInstr::Add { .. } => ("Add", matches!(node.op, SrcOp::Add)),
                    TapeInstr::Sub { .. } => ("Sub", matches!(node.op, SrcOp::Sub)),
                    TapeInstr::Mul { .. } => ("Mul", matches!(node.op, SrcOp::Mul)),
                    _ => ("Div", matches!(node.op, SrcOp::Div)),
                };
                if !matches {
                    op_mismatch(&mut diags, instr_name);
                }
                let ha = f64_bank.read(*a, i, &mut diags);
                let hb = f64_bank.read(*b, i, &mut diags);
                if matches {
                    ancestry(&mut diags, ha, want(0), "left");
                    ancestry(&mut diags, hb, want(1), "right");
                }
                f64_bank.write(*dst, result_hash, i, &mut diags);
            }
            TapeInstr::Neg { dst, a } => {
                let matches = matches!(node.op, SrcOp::Neg);
                if !matches {
                    op_mismatch(&mut diags, "Neg");
                }
                let ha = f64_bank.read(*a, i, &mut diags);
                if matches {
                    ancestry(&mut diags, ha, want(0), "single");
                }
                f64_bank.write(*dst, result_hash, i, &mut diags);
            }
            TapeInstr::Fma {
                kind,
                negate_b,
                dst,
                acc,
                b,
                mulc,
            } => {
                let src_kind = match &node.op {
                    SrcOp::Fma {
                        kind: sk,
                        negate_b: sn,
                    } => {
                        if sn != negate_b {
                            op_mismatch(&mut diags, "Fma (negate_b differs)");
                            None
                        } else {
                            Some(*sk)
                        }
                    }
                    _ => {
                        op_mismatch(&mut diags, "Fma");
                        None
                    }
                };
                if let Some(sk) = src_kind {
                    if sk != *kind {
                        diags.push(Diagnostic::error(
                            Rule::TapeCsKindMismatch,
                            Span::Instr(i),
                            format!("Fma tagged {kind} but source node {p} targets the {sk} unit"),
                        ));
                    }
                }
                let hacc = cs_bank.read(*acc, i, &mut diags);
                let hb = f64_bank.read(*b, i, &mut diags);
                let hmulc = cs_bank.read(*mulc, i, &mut diags);
                for (got, what) in [(hacc, "acc"), (hmulc, "mulc")] {
                    if let Some((_, k)) = got {
                        if k != *kind {
                            diags.push(Diagnostic::error(
                                Rule::TapeCsKindMismatch,
                                Span::Instr(i),
                                format!("{what} operand holds a {k} value but the unit is {kind}"),
                            ));
                        }
                    }
                }
                if src_kind.is_some() {
                    ancestry(&mut diags, hacc.map(|(h, _)| h), want(0), "acc");
                    ancestry(&mut diags, hb, want(1), "b");
                    ancestry(&mut diags, hmulc.map(|(h, _)| h), want(2), "mulc");
                }
                cs_bank.write(*dst, (result_hash, *kind), i, &mut diags);
            }
            TapeInstr::IeeeToCs { kind, dst, src: s } => {
                let matches = match &node.op {
                    SrcOp::IeeeToCs(sk) => {
                        if sk != kind {
                            diags.push(Diagnostic::error(
                                Rule::TapeCsKindMismatch,
                                Span::Instr(i),
                                format!(
                                    "IeeeToCs tagged {kind} but source node {p} converts into {sk}"
                                ),
                            ));
                        }
                        true
                    }
                    _ => {
                        op_mismatch(&mut diags, "IeeeToCs");
                        false
                    }
                };
                let hs = f64_bank.read(*s, i, &mut diags);
                if matches {
                    ancestry(&mut diags, hs, want(0), "source");
                }
                cs_bank.write(*dst, (result_hash, *kind), i, &mut diags);
            }
            TapeInstr::CsToIeee { dst, src: s } => {
                let src_kind = match &node.op {
                    SrcOp::CsToIeee(sk) => Some(*sk),
                    _ => {
                        op_mismatch(&mut diags, "CsToIeee");
                        None
                    }
                };
                let hs = cs_bank.read(*s, i, &mut diags);
                if let (Some((_, k)), Some(sk)) = (hs, src_kind) {
                    if k != sk {
                        diags.push(Diagnostic::error(
                            Rule::TapeCsKindMismatch,
                            Span::Instr(i),
                            format!(
                                "CsToIeee resolves a {k} value but source node {p} expects {sk}"
                            ),
                        ));
                    }
                }
                if src_kind.is_some() {
                    ancestry(&mut diags, hs.map(|(h, _)| h), want(0), "source");
                }
                f64_bank.write(*dst, result_hash, i, &mut diags);
            }
            TapeInstr::Store { output, src: s } => {
                let matches = matches!(node.op, SrcOp::Output(_));
                if !matches {
                    op_mismatch(&mut diags, "Store");
                }
                match stored.get_mut(*output as usize) {
                    Some(count) => {
                        *count += 1;
                        if *count > 1 {
                            diags.push(Diagnostic::error(
                                Rule::TapeIoMismatch,
                                Span::Instr(i),
                                format!("output {output} stored more than once"),
                            ));
                        }
                    }
                    None => diags.push(Diagnostic::error(
                        Rule::TapeIoMismatch,
                        Span::Instr(i),
                        format!("output index {output} out of range"),
                    )),
                }
                let hs = f64_bank.read(*s, i, &mut diags);
                if matches {
                    // an Output node's hash is its (resolved) argument's
                    ancestry(&mut diags, hs, result_hash, "stored");
                }
            }
        }
    }

    for (o, &count) in stored.iter().enumerate() {
        if count == 0 {
            diags.push(Diagnostic::error(
                Rule::TapeIoMismatch,
                Span::Global,
                format!("output {o} ({:?}) is never stored", tape.outputs[o]),
            ));
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `out y = a*b + a;` — nodes: Input a, Input b, Mul, Add, Output.
    fn small_src() -> SourceView {
        SourceView {
            nodes: vec![
                SrcNode {
                    op: SrcOp::Input("a".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Input("b".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Mul,
                    args: vec![0, 1],
                },
                SrcNode {
                    op: SrcOp::Add,
                    args: vec![2, 0],
                },
                SrcNode {
                    op: SrcOp::Output("y".into()),
                    args: vec![3],
                },
            ],
        }
    }

    /// The linear-scan lowering of [`small_src`] with slot reuse: `b`'s
    /// slot is reclaimed by the product, then both die into the sum.
    fn small_tape() -> TapeView {
        TapeView {
            instrs: vec![
                TapeInstr::LoadInput { dst: 0, input: 0 },
                TapeInstr::LoadInput { dst: 1, input: 1 },
                TapeInstr::Mul { dst: 1, a: 0, b: 1 },
                TapeInstr::Add { dst: 0, a: 1, b: 0 },
                TapeInstr::Store { output: 0, src: 0 },
            ],
            provenance: vec![0, 1, 2, 3, 4],
            inputs: vec!["a".into(), "b".into()],
            outputs: vec!["y".into()],
            consts: vec![],
            n_f64_regs: 2,
            n_cs_regs: 0,
        }
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn clean_lowering_verifies() {
        let diags = check_tape(&small_tape(), &small_src());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn uninitialized_read_is_t001() {
        let mut t = small_tape();
        // drop the definition of r1; the product now reads garbage
        t.instrs.remove(1);
        t.provenance.remove(1);
        let diags = check_tape(&t, &small_src());
        assert!(rules_of(&diags).contains(&"T001"), "{diags:?}");
    }

    #[test]
    fn out_of_range_slot_is_t001() {
        let mut t = small_tape();
        t.instrs[2] = TapeInstr::Mul { dst: 1, a: 0, b: 9 };
        let diags = check_tape(&t, &small_src());
        assert!(rules_of(&diags).contains(&"T001"), "{diags:?}");
    }

    #[test]
    fn op_class_mismatch_is_t002() {
        let mut t = small_tape();
        t.provenance[2] = 0; // Mul claims to descend from an Input
        let diags = check_tape(&t, &small_src());
        assert!(rules_of(&diags).contains(&"T002"), "{diags:?}");
    }

    #[test]
    fn truncated_provenance_is_t002() {
        let mut t = small_tape();
        t.provenance.pop();
        let diags = check_tape(&t, &small_src());
        assert_eq!(rules_of(&diags), vec!["T002"], "{diags:?}");
    }

    #[test]
    fn input_order_swap_is_t003() {
        let mut t = small_tape();
        t.inputs.swap(0, 1);
        let diags = check_tape(&t, &small_src());
        assert!(rules_of(&diags).contains(&"T003"), "{diags:?}");
    }

    #[test]
    fn dropped_store_is_t003() {
        let mut t = small_tape();
        t.instrs.pop();
        t.provenance.pop();
        let diags = check_tape(&t, &small_src());
        assert!(rules_of(&diags).contains(&"T003"), "{diags:?}");
    }

    #[test]
    fn operand_swap_is_t005() {
        let mut t = small_tape();
        // swap the product's operands: ancestry differs per position
        t.instrs[2] = TapeInstr::Mul { dst: 1, a: 1, b: 0 };
        let diags = check_tape(&t, &small_src());
        assert!(rules_of(&diags).contains(&"T005"), "{diags:?}");
        assert!(!rules_of(&diags).contains(&"T001"), "{diags:?}");
    }

    #[test]
    fn read_after_free_clobber_is_t005() {
        let mut t = small_tape();
        // the sum writes r1 (clobbering the product's slot is legal);
        // mis-pointing the Store at the *stale* r0 input value is not
        t.instrs[3] = TapeInstr::Add { dst: 1, a: 1, b: 0 };
        t.instrs[4] = TapeInstr::Store { output: 0, src: 0 };
        let diags = check_tape(&t, &small_src());
        assert!(rules_of(&diags).contains(&"T005"), "{diags:?}");
    }

    /// A CS-domain fixture: `y = cs_to_ieee(fma(to_cs(a), a, to_cs(a)))`.
    fn cs_src() -> SourceView {
        SourceView {
            nodes: vec![
                SrcNode {
                    op: SrcOp::Input("a".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::IeeeToCs(CsKind::Pcs),
                    args: vec![0],
                },
                SrcNode {
                    op: SrcOp::Fma {
                        kind: CsKind::Pcs,
                        negate_b: false,
                    },
                    args: vec![1, 0, 1],
                },
                SrcNode {
                    op: SrcOp::CsToIeee(CsKind::Pcs),
                    args: vec![2],
                },
                SrcNode {
                    op: SrcOp::Output("y".into()),
                    args: vec![3],
                },
            ],
        }
    }

    fn cs_tape() -> TapeView {
        TapeView {
            instrs: vec![
                TapeInstr::LoadInput { dst: 0, input: 0 },
                TapeInstr::IeeeToCs {
                    kind: CsKind::Pcs,
                    dst: 0,
                    src: 0,
                },
                TapeInstr::Fma {
                    kind: CsKind::Pcs,
                    negate_b: false,
                    dst: 1,
                    acc: 0,
                    b: 0,
                    mulc: 0,
                },
                TapeInstr::CsToIeee { dst: 0, src: 1 },
                TapeInstr::Store { output: 0, src: 0 },
            ],
            provenance: vec![0, 1, 2, 3, 4],
            inputs: vec!["a".into()],
            outputs: vec!["y".into()],
            consts: vec![],
            n_f64_regs: 1,
            n_cs_regs: 2,
        }
    }

    #[test]
    fn clean_cs_lowering_verifies() {
        let diags = check_tape(&cs_tape(), &cs_src());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mistagged_conversion_is_t004() {
        let mut t = cs_tape();
        t.instrs[1] = TapeInstr::IeeeToCs {
            kind: CsKind::Fcs,
            dst: 0,
            src: 0,
        };
        let diags = check_tape(&t, &cs_src());
        assert!(rules_of(&diags).contains(&"T004"), "{diags:?}");
    }

    #[test]
    fn folded_const_mismatch_is_t006() {
        // source: out y = 2.0 * 3.0;  tape: LoadConst of the *wrong* fold
        let src = SourceView {
            nodes: vec![
                SrcNode {
                    op: SrcOp::Const(2.0),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Const(3.0),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Mul,
                    args: vec![0, 1],
                },
                SrcNode {
                    op: SrcOp::Output("y".into()),
                    args: vec![2],
                },
            ],
        };
        let mut t = TapeView {
            instrs: vec![
                TapeInstr::LoadConst { dst: 0, idx: 0 },
                TapeInstr::Store { output: 0, src: 0 },
            ],
            provenance: vec![2, 3],
            inputs: vec![],
            outputs: vec!["y".into()],
            consts: vec![6.0],
            n_f64_regs: 1,
            n_cs_regs: 0,
        };
        assert!(check_tape(&t, &src).is_empty());
        t.consts[0] = 6.5;
        let diags = check_tape(&t, &src);
        assert!(rules_of(&diags).contains(&"T006"), "{diags:?}");
    }

    #[test]
    fn load_const_from_input_subtree_is_t002() {
        let mut t = small_tape();
        // replace the product with a LoadConst claiming node 2 folded —
        // but node 2's subtree reads inputs, so no fold was possible
        t.instrs[2] = TapeInstr::LoadConst { dst: 1, idx: 0 };
        t.consts = vec![1.0];
        let diags = check_tape(&t, &small_src());
        assert!(rules_of(&diags).contains(&"T002"), "{diags:?}");
    }
}
