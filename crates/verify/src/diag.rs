//! Structured diagnostics: severity, rule id, span, rendered report.
//!
//! Every analysis pass in this crate — and the `Cdfg` validator and text
//! parser in `csfma-hls` — reports violations as [`Diagnostic`] values
//! instead of panicking, so tools can filter by rule, assert specific
//! rules in tests, and render human-readable reports.

use std::fmt;

/// How severe a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not value-corrupting (e.g. a conversion the
    /// elimination pass should have cancelled).
    Warning,
    /// A violated invariant: the datapath, schedule or format would
    /// compute wrong values or deadlock.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Identity of the violated rule. The short id (`D…`/`S…`/`W…`/`P…`) is
/// stable and what mutation tests assert on; the kebab-case name is for
/// humans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// D001: node argument count differs from the operation's arity.
    ArityMismatch,
    /// D002: an argument refers to a later (or nonexistent) node — the
    /// graph is cyclic or dangling.
    EdgeOrder,
    /// D003: an edge crosses value domains (IEEE vs carry-save) without
    /// a conversion.
    DomainMismatch,
    /// D004: a format conversion that cancels against its producer or
    /// duplicates a sibling — the Fig. 12c elimination missed it.
    RedundantConversion,
    /// D005: an interior node no output depends on (dead code survived
    /// `eliminate_dead`).
    DeadNode,
    /// D006: the graph computes no output at all.
    NoSink,
    /// S001: a node starts before an argument's latency has elapsed.
    PrematureStart,
    /// S002: a node never received a start cycle.
    Unscheduled,
    /// S003: more operations start in one cycle than the resource class
    /// has units.
    ResourceOverflow,
    /// S004: the schedule's recorded length understates the real
    /// makespan.
    LengthUnderstated,
    /// W001: the addition window lacks the redundant-sign guard
    /// positions the 3:2 compressors need (DESIGN.md §7.2).
    GuardHeadroom,
    /// W002: the explicit-carry spacing does not divide the block width
    /// (DESIGN.md §7.4).
    CarrySpacing,
    /// W003: block-granular normalization cannot guarantee enough
    /// significant digits for the significand (the 55→58 widening rule).
    SignificandCoverage,
    /// W004: no rounding-data block exists below the kept mantissa.
    RoundingBlock,
    /// W005: a degenerate carry spacing (every digit explicit) — use the
    /// full carry-save format instead.
    DegenerateSpacing,
    /// P001: the textual datapath source failed to parse.
    ParseError,
    /// X001: the tape compiler panicked; the graph is rejected and the
    /// poisoned compilation is never cached.
    CompilerPanic,
    /// F001: a datapath self-check (mod-3 residue or recompute-compare,
    /// DESIGN.md §10) detected a hardware fault during execution.
    FaultDetected,
    /// O001: profiling was requested but the observability layer is
    /// compiled out (`obs` feature disabled) — the run proceeds, the
    /// profile is empty.
    ObsDisabled,
    /// O002: the profiler observed unbalanced stage spans (a span was
    /// force-closed or never exited) — the timings are suspect, the
    /// computed values are not.
    ObsSpanImbalance,
    /// T001: a tape instruction reads a register slot that no earlier
    /// instruction wrote (or indexes past the declared register file).
    TapeUninitializedSlot,
    /// T002: a tape instruction's `source_nodes` provenance is missing,
    /// out of range, or names a source node of an incompatible op class.
    TapeProvenanceBroken,
    /// T003: the tape's input/output layout (names, declared order, or
    /// arity) disagrees with the source graph, or an output is stored
    /// zero or multiple times.
    TapeIoMismatch,
    /// T004: a carry-save register is produced in one CS format (PCS vs
    /// FCS) and consumed as another.
    TapeCsKindMismatch,
    /// T005: symbolic replay found an operand whose value ancestry
    /// differs from the source graph — an operand swap, slot clobber, or
    /// read-after-free under dead-slot reuse.
    TapeValueFlowMismatch,
    /// T006: a folded constant in the tape's pool is not bit-identical
    /// to re-evaluating the all-constant source subtree it replaced.
    TapeConstMismatch,
    /// R001: an effective subtraction whose bounded operand intervals
    /// overlap — catastrophic cancellation is reachable.
    CancellationRisk,
    /// R002: overflow, NaN, or a subnormal is reachable at a node even
    /// though every transitive input carries declared bounds.
    RangeOverflow,
    /// R003: an `in x [lo, hi];` declaration is invalid (NaN bound, or
    /// `lo > hi`).
    InvalidRange,
    /// SV001: a client frame declared a length beyond the connection's
    /// frame-size limit; the frame is refused before its body is read.
    ServeFrameTooLarge,
    /// SV002: a client frame could not be decoded (unknown type tag,
    /// truncated body, or malformed UTF-8 in a text field).
    ServeFrameMalformed,
    /// SV003: a well-formed `SUBMIT` was rejected — unparseable graph,
    /// compile refusal, unknown backend tag, or row data whose length is
    /// not a whole number of input vectors.
    ServeBadRequest,
    /// SV004: the admission gate shed the request (queue full or
    /// in-flight byte budget exhausted); the `SHED` response carries a
    /// retry-after hint and the server did no work on the request.
    ServeOverloadShed,
    /// SV005: the request's deadline expired at a chunk boundary; all
    /// partial work was discarded and no result bytes were produced.
    ServeDeadlineExceeded,
    /// SV006: the server is draining (graceful shutdown) and accepts no
    /// new work; in-flight requests still complete or deadline out.
    ServeDraining,
    /// J001: more than half the rows sent to the native JIT backend
    /// would bail out to the interpreter (advisory; the result is still
    /// bit-exact, only the speedup is gone).
    JitBailoutRate,
}

impl Rule {
    /// Every rule the workspace can emit, in catalogue order. New rules
    /// must be added here — `docs/DIAGNOSTICS.md` is tested against this
    /// list, so forgetting one fails the build's registry-walk test.
    pub const ALL: [Rule; 36] = [
        Rule::ArityMismatch,
        Rule::EdgeOrder,
        Rule::DomainMismatch,
        Rule::RedundantConversion,
        Rule::DeadNode,
        Rule::NoSink,
        Rule::PrematureStart,
        Rule::Unscheduled,
        Rule::ResourceOverflow,
        Rule::LengthUnderstated,
        Rule::GuardHeadroom,
        Rule::CarrySpacing,
        Rule::SignificandCoverage,
        Rule::RoundingBlock,
        Rule::DegenerateSpacing,
        Rule::ParseError,
        Rule::CompilerPanic,
        Rule::FaultDetected,
        Rule::ObsDisabled,
        Rule::ObsSpanImbalance,
        Rule::TapeUninitializedSlot,
        Rule::TapeProvenanceBroken,
        Rule::TapeIoMismatch,
        Rule::TapeCsKindMismatch,
        Rule::TapeValueFlowMismatch,
        Rule::TapeConstMismatch,
        Rule::CancellationRisk,
        Rule::RangeOverflow,
        Rule::InvalidRange,
        Rule::ServeFrameTooLarge,
        Rule::ServeFrameMalformed,
        Rule::ServeBadRequest,
        Rule::ServeOverloadShed,
        Rule::ServeDeadlineExceeded,
        Rule::ServeDraining,
        Rule::JitBailoutRate,
    ];

    /// Stable short id.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::ArityMismatch => "D001",
            Rule::EdgeOrder => "D002",
            Rule::DomainMismatch => "D003",
            Rule::RedundantConversion => "D004",
            Rule::DeadNode => "D005",
            Rule::NoSink => "D006",
            Rule::PrematureStart => "S001",
            Rule::Unscheduled => "S002",
            Rule::ResourceOverflow => "S003",
            Rule::LengthUnderstated => "S004",
            Rule::GuardHeadroom => "W001",
            Rule::CarrySpacing => "W002",
            Rule::SignificandCoverage => "W003",
            Rule::RoundingBlock => "W004",
            Rule::DegenerateSpacing => "W005",
            Rule::ParseError => "P001",
            Rule::CompilerPanic => "X001",
            Rule::FaultDetected => "F001",
            Rule::ObsDisabled => "O001",
            Rule::ObsSpanImbalance => "O002",
            Rule::TapeUninitializedSlot => "T001",
            Rule::TapeProvenanceBroken => "T002",
            Rule::TapeIoMismatch => "T003",
            Rule::TapeCsKindMismatch => "T004",
            Rule::TapeValueFlowMismatch => "T005",
            Rule::TapeConstMismatch => "T006",
            Rule::CancellationRisk => "R001",
            Rule::RangeOverflow => "R002",
            Rule::InvalidRange => "R003",
            Rule::ServeFrameTooLarge => "SV001",
            Rule::ServeFrameMalformed => "SV002",
            Rule::ServeBadRequest => "SV003",
            Rule::ServeOverloadShed => "SV004",
            Rule::ServeDeadlineExceeded => "SV005",
            Rule::ServeDraining => "SV006",
            Rule::JitBailoutRate => "J001",
        }
    }

    /// Human-readable kebab-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::ArityMismatch => "arity-mismatch",
            Rule::EdgeOrder => "edge-order",
            Rule::DomainMismatch => "domain-mismatch",
            Rule::RedundantConversion => "redundant-conversion",
            Rule::DeadNode => "dead-node",
            Rule::NoSink => "no-sink",
            Rule::PrematureStart => "premature-start",
            Rule::Unscheduled => "unscheduled",
            Rule::ResourceOverflow => "resource-overflow",
            Rule::LengthUnderstated => "length-understated",
            Rule::GuardHeadroom => "guard-headroom",
            Rule::CarrySpacing => "carry-spacing",
            Rule::SignificandCoverage => "significand-coverage",
            Rule::RoundingBlock => "rounding-block",
            Rule::DegenerateSpacing => "degenerate-spacing",
            Rule::ParseError => "parse-error",
            Rule::CompilerPanic => "compiler-panic",
            Rule::FaultDetected => "fault-detected",
            Rule::ObsDisabled => "obs-disabled",
            Rule::ObsSpanImbalance => "obs-span-imbalance",
            Rule::TapeUninitializedSlot => "tape-uninitialized-slot",
            Rule::TapeProvenanceBroken => "tape-provenance-broken",
            Rule::TapeIoMismatch => "tape-io-mismatch",
            Rule::TapeCsKindMismatch => "tape-cs-kind-mismatch",
            Rule::TapeValueFlowMismatch => "tape-value-flow-mismatch",
            Rule::TapeConstMismatch => "tape-const-mismatch",
            Rule::CancellationRisk => "cancellation-risk",
            Rule::RangeOverflow => "range-overflow",
            Rule::InvalidRange => "invalid-range",
            Rule::ServeFrameTooLarge => "serve-frame-too-large",
            Rule::ServeFrameMalformed => "serve-frame-malformed",
            Rule::ServeBadRequest => "serve-bad-request",
            Rule::ServeOverloadShed => "serve-overload-shed",
            Rule::ServeDeadlineExceeded => "serve-deadline-exceeded",
            Rule::ServeDraining => "serve-draining",
            Rule::JitBailoutRate => "jit-bailout-rate",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.id(), self.name())
    }
}

/// Where in the artifact the finding points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Span {
    /// A single graph node.
    Node(usize),
    /// A single tape instruction (post-lowering program position).
    Instr(usize),
    /// The edge from `user`'s argument slot `arg` to its producer.
    Edge {
        /// Consuming node.
        user: usize,
        /// Argument position within the consumer.
        arg: usize,
    },
    /// One schedule cycle (for capacity findings).
    Cycle(u32),
    /// A position in textual source.
    Source {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
    /// A named unit format.
    Format(String),
    /// The whole artifact.
    Global,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Node(id) => write!(f, "node {id}"),
            Span::Instr(i) => write!(f, "instr {i}"),
            Span::Edge { user, arg } => write!(f, "node {user}, arg {arg}"),
            Span::Cycle(c) => write!(f, "cycle {c}"),
            Span::Source { line, col } => write!(f, "{line}:{col}"),
            Span::Format(name) => write!(f, "format {name:?}"),
            Span::Global => write!(f, "graph"),
        }
    }
}

/// One finding of an analysis pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Which invariant.
    pub rule: Rule,
    /// Where.
    pub span: Span,
    /// Specifics: the concrete nodes, cycles, widths involved.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity finding.
    pub fn error(rule: Rule, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            rule,
            span,
            message: message.into(),
        }
    }

    /// A warning-severity finding.
    pub fn warning(rule: Rule, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            rule,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {} ({})",
            self.severity,
            self.rule.id(),
            self.rule.name(),
            self.message,
            self.span
        )
    }
}

/// True if any finding is error severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Render findings as a line-per-finding report with a summary footer.
pub fn render_report(diags: &[Diagnostic]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{d}");
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    let _ = writeln!(out, "{errors} error(s), {warnings} warning(s)");
    out
}

/// Render findings as a JSON array for machine consumers
/// (`csfma-lint --json`). Each element carries `severity`, `rule`,
/// `name`, `span` (the same text the human report prints), and
/// `message`. Emitted by hand so the verify crate stays
/// dependency-free; strings are escaped per RFC 8259.
pub fn render_json(diags: &[Diagnostic]) -> String {
    use std::fmt::Write as _;
    fn escape(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
    }
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"severity\":\"{}\",\"rule\":\"{}\",\"name\":\"{}\",\"span\":\"",
            d.severity,
            d.rule.id(),
            d.rule.name()
        );
        escape(&d.span.to_string(), &mut out);
        out.push_str("\",\"message\":\"");
        escape(&d.message, &mut out);
        out.push_str("\"}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_contains_rule_and_span() {
        let d = Diagnostic::error(
            Rule::DomainMismatch,
            Span::Edge { user: 7, arg: 1 },
            "Add consumes a CS value",
        );
        let s = d.to_string();
        assert!(s.contains("D003"), "{s}");
        assert!(s.contains("domain-mismatch"), "{s}");
        assert!(s.contains("node 7, arg 1"), "{s}");
        assert!(s.starts_with("error"), "{s}");
    }

    #[test]
    fn report_counts_severities() {
        let diags = vec![
            Diagnostic::error(Rule::PrematureStart, Span::Node(3), "x"),
            Diagnostic::warning(Rule::DeadNode, Span::Node(4), "y"),
            Diagnostic::warning(Rule::RedundantConversion, Span::Node(5), "z"),
        ];
        assert!(has_errors(&diags));
        let rep = render_report(&diags);
        assert!(rep.contains("1 error(s), 2 warning(s)"), "{rep}");
        assert_eq!(rep.lines().count(), 4);
    }

    #[test]
    fn json_rendering_escapes_and_lists_all_fields() {
        let diags = vec![
            Diagnostic::error(Rule::TapeValueFlowMismatch, Span::Instr(3), "a \"b\"\nc"),
            Diagnostic::warning(Rule::CancellationRisk, Span::Node(1), "plain"),
        ];
        let j = render_json(&diags);
        assert!(j.starts_with('[') && j.ends_with(']'), "{j}");
        assert!(j.contains("\"rule\":\"T005\""), "{j}");
        assert!(j.contains("\"span\":\"instr 3\""), "{j}");
        assert!(j.contains("a \\\"b\\\"\\nc"), "{j}");
        assert!(j.contains("\"severity\":\"warning\""), "{j}");
        assert_eq!(render_json(&[]), "[]");
    }

    #[test]
    fn rule_ids_are_unique() {
        let mut ids: Vec<_> = Rule::ALL.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Rule::ALL.len());
        let mut names: Vec<_> = Rule::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Rule::ALL.len());
    }

    /// The registry walk of ISSUE 5: every rule the workspace can emit
    /// must be documented in `docs/DIAGNOSTICS.md` — by stable id as a
    /// section heading and by kebab-case name — so the published
    /// catalogue cannot silently rot when a rule is added.
    #[test]
    fn every_rule_is_documented_in_diagnostics_md() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/DIAGNOSTICS.md");
        let doc = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("docs/DIAGNOSTICS.md must exist ({e})"));
        let mut missing = Vec::new();
        for rule in Rule::ALL {
            let heading = format!("## {}", rule.id());
            if !doc.contains(&heading) {
                missing.push(format!("{} (no `{heading}` heading)", rule.id()));
            } else if !doc.contains(rule.name()) {
                missing.push(format!("{} (name `{}` absent)", rule.id(), rule.name()));
            }
        }
        assert!(
            missing.is_empty(),
            "diagnostic codes missing from docs/DIAGNOSTICS.md: {missing:?}"
        );
    }
}
