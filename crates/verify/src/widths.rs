//! Pass 3: width / guard-bit interval analysis of [`CsFmaFormat`]s.
//!
//! The two silent-corruption bug classes recorded in DESIGN.md §7 were
//! both *geometry* bugs — decidable from the format parameters alone,
//! long before any value flows through the unit:
//!
//! * §7.2: the CSA tree loses the signed two-word sum unless every
//!   compressor level keeps a redundant sign bit above the operands
//!   (first observed as a wrong digit at the `2^163` product boundary);
//! * §7.4: a carry spacing that does not divide the block width puts
//!   explicit carry positions at different offsets in different blocks,
//!   breaking block-granular alignment (first observed as a `2^29`-scale
//!   error).
//!
//! This pass turns those — plus the 55→58 block-widening rule the paper
//! derives for early leading-zero anticipation — into lint rules:
//!
//! * **W001 guard-headroom** — the addition window must extend at least
//!   [`COMPRESSOR_HEADROOM_BITS`] positions above the product's top
//!   digit, and at least 2 positions above a maximally left-shifted
//!   addend (`max_shift = window - mantissa - 2` is how the unit model
//!   derives its alignment clamp, so the window must be at least
//!   `mantissa + 2` wide to begin with);
//! * **W002 carry-spacing** — an explicit-carry spacing must be ≥ 1 and
//!   divide the block width so carries sit at the same offsets in every
//!   block (Sec. III-E: "equally distributed in every mantissa block");
//! * **W003 significand-coverage** — block-granular normalization keeps
//!   `mant_blocks` whole blocks; in the worst case the leading non-zero
//!   digit is the *bottom* digit of the top kept block, so only
//!   `(mant_blocks − 1) · block_bits + 1` digits are guaranteed
//!   significant — and an early-LZA normalizer may additionally skip up
//!   to 3 digits short. What remains must cover the `B` significand
//!   plus a sign and a guard digit. For 55-bit blocks with LZA this
//!   yields `53 < 55`: exactly why the paper widens PCS blocks to 58;
//! * **W004 rounding-block** — at least one block of rounding data must
//!   exist below the kept mantissa, or round-to-nearest decisions in
//!   the next unit have nothing to inspect;
//! * **W005 degenerate-spacing** (warning) — spacing 1 makes every
//!   position an explicit carry; that *is* full carry-save, so the
//!   format should say `carry_spacing: None`.

use csfma_carrysave::COMPRESSOR_HEADROOM_BITS;
use csfma_core::{CsFmaFormat, Normalizer};

use crate::diag::{Diagnostic, Rule, Span};

/// Worst-case shortfall of the early leading-zero anticipator, in
/// digits (Sec. III-G: "the anticipated position may be off by up to 3
/// bits"). The ZD normalizer is exact.
pub const LZA_SLACK_BITS: usize = 3;

/// Digits of result significance block-granular normalization must
/// guarantee beyond the `B` significand: one redundant sign digit and
/// one guard digit.
pub const COVERAGE_MARGIN_BITS: usize = 2;

/// The derived alignment-window intervals of a format — the numbers the
/// W-rules compare. Exposed so the CLI can print *why* a rule fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowPlan {
    /// Total window width in digits.
    pub window_bits: usize,
    /// Digit offset of the product's LSB inside the window
    /// (`right_blocks * block_bits`).
    pub product_offset: usize,
    /// One past the product's top digit (`product_offset + product_bits`).
    pub product_top: usize,
    /// Free digits above the product (`window_bits - product_top`) — must
    /// cover [`COMPRESSOR_HEADROOM_BITS`].
    pub left_headroom: usize,
    /// The unit model's clamp on addend left-alignment:
    /// `window_bits - mant_bits - 2` (may be negative for degenerate
    /// formats, hence signed).
    pub max_shift: i64,
    /// Digits guaranteed significant after block-granular normalization,
    /// net of anticipation slack.
    pub guaranteed_digits: i64,
    /// Digits the result actually needs (`b_sig_bits` +
    /// [`COVERAGE_MARGIN_BITS`]).
    pub required_digits: usize,
}

/// Compute the interval model of `f`. Mirrors the geometry the unit
/// model (`csfma-core::unit`) and multiplier actually use, so a clean
/// plan here means the runtime datapath has the headroom it assumes.
pub fn window_plan(f: &CsFmaFormat) -> WindowPlan {
    let window_bits = f.window_bits();
    let product_offset = f.right_blocks * f.block_bits;
    let product_top = product_offset + f.product_bits();
    let left_headroom = window_bits.saturating_sub(product_top);
    let max_shift = window_bits as i64 - f.mant_bits() as i64 - 2;
    let slack = match f.normalizer {
        Normalizer::ZeroDetect => 0,
        Normalizer::EarlyLza => LZA_SLACK_BITS,
    };
    let guaranteed_digits =
        ((f.mant_blocks.saturating_sub(1) * f.block_bits) as i64 + 1) - slack as i64;
    WindowPlan {
        window_bits,
        product_offset,
        product_top,
        left_headroom,
        max_shift,
        guaranteed_digits,
        required_digits: f.b_sig_bits + COVERAGE_MARGIN_BITS,
    }
}

/// Run the width/guard-bit pass over one format.
pub fn check_format(f: &CsFmaFormat) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let span = || Span::Format(f.name.to_string());

    if f.block_bits == 0 || f.mant_blocks == 0 {
        diags.push(Diagnostic::error(
            Rule::SignificandCoverage,
            span(),
            format!(
                "degenerate geometry: {} block(s) of {} digit(s)",
                f.mant_blocks, f.block_bits
            ),
        ));
        return diags;
    }

    let plan = window_plan(f);

    // W001 — compressor/alignment guard headroom (DESIGN.md §7.2).
    if plan.window_bits < plan.product_top + COMPRESSOR_HEADROOM_BITS {
        diags.push(Diagnostic::error(
            Rule::GuardHeadroom,
            span(),
            format!(
                "window ({} digits) leaves {} digit(s) above the product top \
                 (offset {} + {} product digits); the compressor tree needs {} \
                 for the redundant sign and carry-out",
                plan.window_bits,
                plan.left_headroom,
                plan.product_offset,
                f.product_bits(),
                COMPRESSOR_HEADROOM_BITS
            ),
        ));
    }
    if plan.max_shift < 0 {
        diags.push(Diagnostic::error(
            Rule::GuardHeadroom,
            span(),
            format!(
                "window ({} digits) is narrower than mantissa + 2 guard \
                 positions ({} digits); no legal addend alignment exists",
                plan.window_bits,
                f.mant_bits() + 2
            ),
        ));
    }

    // W002 / W005 — explicit-carry spacing (DESIGN.md §7.4).
    match f.carry_spacing {
        Some(0) => diags.push(Diagnostic::error(
            Rule::CarrySpacing,
            span(),
            "carry spacing 0 is meaningless (division by zero in the \
             transport layout)",
        )),
        Some(1) => diags.push(Diagnostic::warning(
            Rule::DegenerateSpacing,
            span(),
            "carry spacing 1 marks every digit as an explicit carry; that is \
             full carry-save — use carry_spacing: None",
        )),
        Some(k) if !f.block_bits.is_multiple_of(k) => diags.push(Diagnostic::error(
            Rule::CarrySpacing,
            span(),
            format!(
                "carry spacing {k} does not divide the {} digit block width; \
                 explicit carries would sit at different offsets in different \
                 blocks and block-granular alignment corrupts them",
                f.block_bits
            ),
        )),
        _ => {}
    }

    // W003 — significand coverage after block-granular normalization.
    if plan.guaranteed_digits < plan.required_digits as i64 {
        let slack_note = match f.normalizer {
            Normalizer::ZeroDetect => String::new(),
            Normalizer::EarlyLza => {
                format!(" minus {LZA_SLACK_BITS} digits of LZA slack")
            }
        };
        diags.push(Diagnostic::error(
            Rule::SignificandCoverage,
            span(),
            format!(
                "normalization keeps {} block(s) of {} digits, guaranteeing \
                 only {} significant digit(s) (worst-case leading digit at the \
                 bottom of the top block{slack_note}) but the result needs \
                 {} ({} significand + {} margin); widen the blocks",
                f.mant_blocks,
                f.block_bits,
                plan.guaranteed_digits,
                plan.required_digits,
                f.b_sig_bits,
                COVERAGE_MARGIN_BITS
            ),
        ));
    }

    // W004 — rounding data must exist below the mantissa.
    if f.right_blocks == 0 {
        diags.push(Diagnostic::error(
            Rule::RoundingBlock,
            span(),
            "no alignment block below the product: the block under the kept \
             mantissa carries the rounding data the next unit's correction \
             row consumes",
        ));
    }

    diags
}

/// Check every standard format shipped by `csfma-core`. All five must be
/// clean; this is the CI anchor for the W-rules.
pub fn check_standard_formats() -> Vec<Diagnostic> {
    [
        CsFmaFormat::PCS_55_ZD,
        CsFmaFormat::PCS_58_LZA,
        CsFmaFormat::FCS_29_LZA,
        CsFmaFormat::PCS_27_SP,
        CsFmaFormat::FCS_15_SP,
    ]
    .iter()
    .flat_map(check_format)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_formats_are_clean() {
        let diags = check_standard_formats();
        assert!(diags.is_empty(), "{}", crate::diag::render_report(&diags));
    }

    #[test]
    fn pcs_55_window_plan_matches_paper() {
        let plan = window_plan(&CsFmaFormat::PCS_55_ZD);
        assert_eq!(plan.window_bits, 385);
        assert_eq!(plan.product_offset, 110);
        assert_eq!(plan.product_top, 273);
        assert_eq!(plan.left_headroom, 112);
        assert_eq!(plan.max_shift, 385 - 110 - 2);
        assert_eq!(plan.guaranteed_digits, 56);
        assert_eq!(plan.required_digits, 55);
    }

    #[test]
    fn missing_headroom_is_w001() {
        // Window exactly one digit above the product top: the compressor
        // tree's redundant sign bit has nowhere to live. Coverage and
        // spacing are kept legal so W001 fires alone.
        let f = CsFmaFormat {
            name: "test-no-headroom",
            block_bits: 28,
            mant_blocks: 2,
            left_blocks: 0,
            right_blocks: 1,
            carry_spacing: Some(14),
            normalizer: Normalizer::ZeroDetect,
            b_sig_bits: 27,
        };
        let diags = check_format(&f);
        assert_eq!(diags.len(), 1, "{}", crate::diag::render_report(&diags));
        assert_eq!(diags[0].rule, Rule::GuardHeadroom);
    }

    #[test]
    fn non_dividing_spacing_is_w002() {
        let f = CsFmaFormat {
            carry_spacing: Some(10),
            ..CsFmaFormat::PCS_55_ZD
        };
        let diags = check_format(&f);
        assert_eq!(diags.len(), 1, "{}", crate::diag::render_report(&diags));
        assert_eq!(diags[0].rule, Rule::CarrySpacing);
        // …and the legal spacings for 55-digit blocks pass.
        for k in [5, 11, 55] {
            let ok = CsFmaFormat {
                carry_spacing: Some(k),
                ..CsFmaFormat::PCS_55_ZD
            };
            assert!(check_format(&ok).is_empty(), "spacing {k}");
        }
    }

    #[test]
    fn lza_on_55_bit_blocks_is_w003() {
        // The static derivation of the paper's 55 → 58 widening: strapping
        // an early LZA onto the 55-bit-block format guarantees only
        // 56 − 3 = 53 digits, short of the 53 + 2 the result needs.
        let f = CsFmaFormat {
            normalizer: Normalizer::EarlyLza,
            ..CsFmaFormat::PCS_55_ZD
        };
        let diags = check_format(&f);
        assert_eq!(diags.len(), 1, "{}", crate::diag::render_report(&diags));
        assert_eq!(diags[0].rule, Rule::SignificandCoverage);
        // 58-bit blocks absorb the slack (the shipped PCS_58_LZA).
        assert!(check_format(&CsFmaFormat::PCS_58_LZA).is_empty());
    }

    #[test]
    fn missing_rounding_block_is_w004() {
        let f = CsFmaFormat {
            right_blocks: 0,
            // keep a huge left so W001 stays quiet
            left_blocks: 5,
            ..CsFmaFormat::PCS_55_ZD
        };
        let diags = check_format(&f);
        assert_eq!(diags.len(), 1, "{}", crate::diag::render_report(&diags));
        assert_eq!(diags[0].rule, Rule::RoundingBlock);
    }

    #[test]
    fn spacing_one_is_w005_warning() {
        let f = CsFmaFormat {
            carry_spacing: Some(1),
            ..CsFmaFormat::PCS_55_ZD
        };
        let diags = check_format(&f);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::DegenerateSpacing);
        assert!(!crate::diag::has_errors(&diags));
    }
}
