//! Pass 1: domain/format dataflow checking.
//!
//! Walks every edge of a [`Graph`] and reports, as [`Diagnostic`]s:
//!
//! * **D001 arity-mismatch** — a node's argument count differs from its
//!   port count;
//! * **D002 edge-order** — an argument index points at the node itself,
//!   a later node, or past the end of the graph (a cycle or dangling
//!   edge; node order is the topological witness, so any violation
//!   breaks acyclicity);
//! * **D003 domain-mismatch** — a producer's result domain differs from
//!   the consuming port's expected domain (an IEEE adder fed a raw
//!   carry-save value, or a CS-domain FMA port fed a packed IEEE word);
//! * **D004 redundant-conversion** — a conversion that immediately
//!   cancels against the conversion producing its input within the same
//!   unit format, or that duplicates a sibling conversion of the same
//!   value (both should have been removed by the Fig. 12c elimination);
//! * **D005 dead-node** — an interior node no sink transitively uses;
//! * **D006 no-sink** — a non-empty graph with no output at all.

use crate::diag::{Diagnostic, Rule, Span};
use crate::graph::{Graph, Role};

/// Run the dataflow pass over `g`. Returns all findings; empty means
/// the graph is domain-consistent, acyclic and fully live.
pub fn check_dataflow(g: &Graph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = g.nodes.len();

    for (id, node) in g.nodes.iter().enumerate() {
        if node.args.len() != node.ports.len() {
            diags.push(Diagnostic::error(
                Rule::ArityMismatch,
                Span::Node(id),
                format!(
                    "{} has {} argument(s) but declares {} port(s)",
                    node.label,
                    node.args.len(),
                    node.ports.len()
                ),
            ));
        }
        for (slot, (&arg, port)) in node.args.iter().zip(&node.ports).enumerate() {
            if arg >= id {
                let why = if arg >= n {
                    "a nonexistent node"
                } else if arg == id {
                    "itself"
                } else {
                    "a later node (cycle)"
                };
                diags.push(Diagnostic::error(
                    Rule::EdgeOrder,
                    Span::Edge {
                        user: id,
                        arg: slot,
                    },
                    format!("{} argument {slot} refers to {why}: node {arg}", node.label),
                ));
                continue;
            }
            let producer = &g.nodes[arg];
            if producer.result != *port {
                diags.push(Diagnostic::error(
                    Rule::DomainMismatch,
                    Span::Edge {
                        user: id,
                        arg: slot,
                    },
                    format!(
                        "{} port {slot} expects {} but node {arg} ({}) produces {}",
                        node.label, port, producer.label, producer.result
                    ),
                ));
            }
        }
    }

    check_conversions(g, &mut diags);
    check_liveness(g, &mut diags);
    diags
}

/// D004: conversions that cancel against their producer or duplicate a
/// sibling. Only well-formed edges (in-range, single-argument
/// conversions) are inspected; malformed ones are already reported
/// above.
fn check_conversions(g: &Graph, diags: &mut Vec<Diagnostic>) {
    let mut seen: Vec<(usize, &crate::graph::Conversion)> = Vec::new();
    for (id, node) in g.nodes.iter().enumerate() {
        let Some(conv) = &node.conv else { continue };
        let Some(&src) = node.args.first() else {
            continue;
        };
        if src >= id {
            continue;
        }
        if let Some(prod_conv) = &g.nodes[src].conv {
            if prod_conv.unit == conv.unit && prod_conv.to != conv.to {
                diags.push(Diagnostic::warning(
                    Rule::RedundantConversion,
                    Span::Node(id),
                    format!(
                        "{} cancels against node {src} ({}) within unit format {:?}; \
                         conversion elimination should have removed the pair",
                        node.label, g.nodes[src].label, conv.unit
                    ),
                ));
            }
        }
        if let Some(&(dup, _)) = seen
            .iter()
            .find(|(other, c)| g.nodes[*other].args.first() == Some(&src) && **c == *conv)
        {
            diags.push(Diagnostic::warning(
                Rule::RedundantConversion,
                Span::Node(id),
                format!(
                    "{} duplicates node {dup}: same source (node {src}) and \
                     same conversion into {:?}",
                    node.label, conv.unit
                ),
            ));
        }
        seen.push((id, conv));
    }
}

/// D005/D006: liveness from sinks backwards over well-formed edges.
fn check_liveness(g: &Graph, diags: &mut Vec<Diagnostic>) {
    if g.nodes.is_empty() {
        return;
    }
    let sinks: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.role == Role::Sink)
        .map(|(i, _)| i)
        .collect();
    if sinks.is_empty() {
        diags.push(Diagnostic::warning(
            Rule::NoSink,
            Span::Global,
            format!("graph has {} node(s) but no output", g.nodes.len()),
        ));
        return;
    }
    let mut live = vec![false; g.nodes.len()];
    let mut stack = sinks;
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id], true) {
            continue;
        }
        for &arg in &g.nodes[id].args {
            if arg < id && !live[arg] {
                stack.push(arg);
            }
        }
    }
    for (id, node) in g.nodes.iter().enumerate() {
        if !live[id] && node.role == Role::Interior {
            diags.push(Diagnostic::warning(
                Rule::DeadNode,
                Span::Node(id),
                format!("{} is not used by any output", node.label),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Domain, Node, Role};

    fn input(g: &mut Graph) -> usize {
        g.push(Node::new("Input", Domain::Ieee).with_role(Role::Source))
    }

    fn clean_graph() -> Graph {
        let mut g = Graph::new();
        let a = input(&mut g);
        let b = input(&mut g);
        let m = g.push(
            Node::new("Mul", Domain::Ieee)
                .with_args(vec![a, b], vec![Domain::Ieee, Domain::Ieee])
                .with_latency(5)
                .with_resource("mul"),
        );
        g.push(
            Node::new("Output", Domain::Ieee)
                .with_args(vec![m], vec![Domain::Ieee])
                .with_role(Role::Sink),
        );
        g
    }

    #[test]
    fn clean_graph_has_no_findings() {
        assert!(check_dataflow(&clean_graph()).is_empty());
    }

    #[test]
    fn domain_mismatch_is_d003() {
        let mut g = Graph::new();
        let a = input(&mut g);
        let cs = g.push(
            Node::new("IeeeToCs", Domain::Cs)
                .with_args(vec![a], vec![Domain::Ieee])
                .with_conversion("pcs-55-zd", Domain::Cs),
        );
        // Add expects IEEE on both ports but gets the raw CS value.
        let s = g.push(
            Node::new("Add", Domain::Ieee).with_args(vec![a, cs], vec![Domain::Ieee, Domain::Ieee]),
        );
        g.push(
            Node::new("Output", Domain::Ieee)
                .with_args(vec![s], vec![Domain::Ieee])
                .with_role(Role::Sink),
        );
        let diags = check_dataflow(&g);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::DomainMismatch
                    && d.span == Span::Edge { user: s, arg: 1 }),
            "{diags:?}"
        );
    }

    #[test]
    fn cycle_and_dangling_are_d002() {
        let mut g = Graph::new();
        let a = input(&mut g);
        g.push(
            Node::new("Add", Domain::Ieee)
                .with_args(vec![a, 99], vec![Domain::Ieee, Domain::Ieee])
                .with_role(Role::Sink),
        );
        let diags = check_dataflow(&g);
        assert!(diags.iter().any(|d| d.rule == Rule::EdgeOrder), "{diags:?}");
    }

    #[test]
    fn arity_mismatch_is_d001() {
        let mut g = Graph::new();
        let a = input(&mut g);
        g.push(
            Node::new("Add", Domain::Ieee)
                .with_args(vec![a], vec![Domain::Ieee, Domain::Ieee])
                .with_role(Role::Sink),
        );
        let diags = check_dataflow(&g);
        assert!(
            diags.iter().any(|d| d.rule == Rule::ArityMismatch),
            "{diags:?}"
        );
    }

    #[test]
    fn cancelling_conversion_pair_is_d004() {
        let mut g = Graph::new();
        let a = input(&mut g);
        let to_cs = g.push(
            Node::new("IeeeToCs", Domain::Cs)
                .with_args(vec![a], vec![Domain::Ieee])
                .with_conversion("pcs-55-zd", Domain::Cs),
        );
        let back = g.push(
            Node::new("CsToIeee", Domain::Ieee)
                .with_args(vec![to_cs], vec![Domain::Cs])
                .with_conversion("pcs-55-zd", Domain::Ieee),
        );
        g.push(
            Node::new("Output", Domain::Ieee)
                .with_args(vec![back], vec![Domain::Ieee])
                .with_role(Role::Sink),
        );
        let diags = check_dataflow(&g);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::RedundantConversion && d.span == Span::Node(back)),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_interior_node_is_d005_but_unused_input_is_not() {
        let mut g = Graph::new();
        let a = input(&mut g);
        let b = input(&mut g); // unused source: fine
        let _ = b;
        let dead = g.push(Node::new("Neg", Domain::Ieee).with_args(vec![a], vec![Domain::Ieee]));
        g.push(
            Node::new("Output", Domain::Ieee)
                .with_args(vec![a], vec![Domain::Ieee])
                .with_role(Role::Sink),
        );
        let diags = check_dataflow(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::DeadNode);
        assert_eq!(diags[0].span, Span::Node(dead));
    }

    #[test]
    fn sinkless_graph_is_d006() {
        let mut g = Graph::new();
        let a = input(&mut g);
        g.push(Node::new("Neg", Domain::Ieee).with_args(vec![a], vec![Domain::Ieee]));
        let diags = check_dataflow(&g);
        assert!(diags.iter().any(|d| d.rule == Rule::NoSink), "{diags:?}");
    }
}
