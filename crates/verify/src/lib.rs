//! # csfma-verify — static datapath, schedule and format checking
//!
//! The HLS pass (Sec. III-I, Fig. 12) repeatedly rewrites a scheduled
//! datapath: multiply→add pairs fuse into carry-save FMA units, format
//! conversions are inserted and cancelled, and the graph is rescheduled.
//! Every one of those rewrites must preserve three families of invariants
//! that are *statically decidable* — no simulation needed:
//!
//! 1. [`dataflow`] — every edge of the graph is domain-consistent
//!    (IEEE 754 vs the carry-save transport format), conversions are
//!    legal and non-redundant, arities match, and the node order is
//!    acyclic;
//! 2. [`hazard`] — a computed schedule never fires a node before all of
//!    its arguments' latencies have completed, and never exceeds a
//!    resource class's per-cycle start capacity — a race detector for
//!    `asap`/`alap`/list schedules;
//! 3. [`widths`] — a carry-save FMA format keeps enough guard and
//!    redundant-sign headroom that the compressor tree, carry reduction
//!    and block-granular normalization are exact where the paper requires
//!    exactness (the two bug classes of DESIGN.md §7.2/§7.4 become lint
//!    failures here instead of `2^k`-scale runtime corruption);
//! 4. [`tape`] — a compiled instruction tape is a faithful translation
//!    of its source graph: slots are defined before use, the positional
//!    input/output layout survives, carry-save formats are consumed as
//!    produced, and every operand's value ancestry matches what the
//!    per-instruction provenance promises (the `T*` rules — a
//!    translation validator in the `verify_function` tradition);
//! 5. [`range`] — an interval abstract interpretation over declared
//!    input ranges that flags reachable cancellation and overflow, and
//!    refines the worst-case width bounds of [`widths`] into
//!    datapath-specific proofs (the `R*` rules).
//!
//! All passes report through the structured [`Diagnostic`] type instead
//! of panicking, so callers (the fusion pass, the `csfma-lint` CLI, CI)
//! can render, filter, count and test individual rules.
//!
//! The crate deliberately sits *below* `csfma-hls` in the dependency
//! graph: the graph passes operate on a normalized [`graph::Graph`] view
//! that `csfma-hls` adapts its `Cdfg` into, which lets the fusion pass
//! itself re-run the checker after every trial rewrite.

#![warn(missing_docs)]

pub mod dataflow;
pub mod diag;
pub mod graph;
pub mod hazard;
pub mod range;
pub mod tape;
pub mod widths;

pub use dataflow::check_dataflow;
pub use diag::{has_errors, render_json, render_report, Diagnostic, Rule, Severity, Span};
pub use graph::{Conversion, Domain, Graph, Node, Role, ScheduleView};
pub use hazard::check_schedule;
pub use range::{analyze_ranges, Interval, RangeDecl, RangeReport};
pub use tape::{check_tape, CsKind, SourceView, SrcNode, SrcOp, TapeInstr, TapeView};
pub use widths::{check_format, check_standard_formats, window_plan, WindowPlan};
