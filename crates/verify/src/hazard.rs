//! Pass 2: schedule hazard detection.
//!
//! Given a [`Graph`] (which carries each node's latency and resource
//! class) and a [`ScheduleView`], reports:
//!
//! * **S002 unscheduled** — a node with no start cycle, or a schedule
//!   whose start vector doesn't cover the graph;
//! * **S001 premature-start** — a node starting before one of its
//!   arguments' results is available (`start[arg] + latency(arg) >
//!   start[node]`; a zero-latency producer may feed a consumer in the
//!   same cycle, matching the chaining rule the ASAP scheduler uses);
//! * **S003 resource-overflow** — more operations of one resource class
//!   starting in a single cycle than the class has units;
//! * **S004 length-understated** — the schedule's recorded length is
//!   smaller than the true makespan `max(start + latency)`.

use std::collections::HashMap;

use crate::diag::{Diagnostic, Rule, Span};
use crate::graph::{Graph, ScheduleView};

/// Run the hazard pass. `caps` lists per-cycle start capacities by
/// resource class tag; classes not listed (and the `"free"` tag) are
/// unconstrained.
pub fn check_schedule(g: &Graph, s: &ScheduleView, caps: &[(&str, usize)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    if s.start.len() != g.nodes.len() {
        diags.push(Diagnostic::error(
            Rule::Unscheduled,
            Span::Global,
            format!(
                "schedule covers {} node(s) but the graph has {}",
                s.start.len(),
                g.nodes.len()
            ),
        ));
        return diags;
    }

    for (id, node) in g.nodes.iter().enumerate() {
        let Some(start) = s.start[id] else {
            diags.push(Diagnostic::error(
                Rule::Unscheduled,
                Span::Node(id),
                format!("{} has no start cycle", node.label),
            ));
            continue;
        };
        for (slot, &arg) in node.args.iter().enumerate() {
            if arg >= id {
                continue; // malformed edge; the dataflow pass owns it
            }
            let Some(arg_start) = s.start[arg] else {
                continue;
            };
            let ready = arg_start + g.nodes[arg].latency;
            if start < ready {
                diags.push(Diagnostic::error(
                    Rule::PrematureStart,
                    Span::Node(id),
                    format!(
                        "{} starts at cycle {start} but argument {slot} \
                         (node {arg}, {}) is not ready before cycle {ready}",
                        node.label, g.nodes[arg].label
                    ),
                ));
            }
        }
    }

    check_capacities(g, s, caps, &mut diags);

    let makespan = g
        .nodes
        .iter()
        .zip(&s.start)
        .filter_map(|(n, st)| st.map(|st| st + n.latency))
        .max()
        .unwrap_or(0);
    if makespan > s.length {
        diags.push(Diagnostic::warning(
            Rule::LengthUnderstated,
            Span::Global,
            format!(
                "schedule claims {} cycle(s) but the makespan is {makespan}",
                s.length
            ),
        ));
    }

    diags
}

/// S003: count starts per (cycle, resource class) against `caps`.
fn check_capacities(
    g: &Graph,
    s: &ScheduleView,
    caps: &[(&str, usize)],
    diags: &mut Vec<Diagnostic>,
) {
    let mut usage: HashMap<(u32, &str), usize> = HashMap::new();
    for (node, st) in g.nodes.iter().zip(&s.start) {
        if let Some(cycle) = st {
            if node.resource != "free" {
                *usage.entry((*cycle, node.resource)).or_default() += 1;
            }
        }
    }
    let mut over: Vec<(u32, &str, usize, usize)> = usage
        .into_iter()
        .filter_map(|((cycle, res), used)| {
            let limit = caps.iter().find(|(tag, _)| *tag == res)?.1;
            (used > limit).then_some((cycle, res, used, limit))
        })
        .collect();
    over.sort_unstable();
    for (cycle, res, used, limit) in over {
        diags.push(Diagnostic::error(
            Rule::ResourceOverflow,
            Span::Cycle(cycle),
            format!("{used} {res} operation(s) start in one cycle but only {limit} unit(s) exist"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Domain, Node, Role};

    /// a, b inputs; m = a*b (lat 5, "mul"); s = m+a (lat 4, "add"); out.
    fn chain() -> Graph {
        let mut g = Graph::new();
        let a = g.push(Node::new("Input", Domain::Ieee).with_role(Role::Source));
        let b = g.push(Node::new("Input", Domain::Ieee).with_role(Role::Source));
        let m = g.push(
            Node::new("Mul", Domain::Ieee)
                .with_args(vec![a, b], vec![Domain::Ieee, Domain::Ieee])
                .with_latency(5)
                .with_resource("mul"),
        );
        let s = g.push(
            Node::new("Add", Domain::Ieee)
                .with_args(vec![m, a], vec![Domain::Ieee, Domain::Ieee])
                .with_latency(4)
                .with_resource("add"),
        );
        g.push(
            Node::new("Output", Domain::Ieee)
                .with_args(vec![s], vec![Domain::Ieee])
                .with_role(Role::Sink),
        );
        g
    }

    #[test]
    fn valid_asap_schedule_is_clean() {
        let g = chain();
        let s = ScheduleView {
            start: vec![Some(0), Some(0), Some(0), Some(5), Some(9)],
            length: 9,
        };
        assert!(check_schedule(&g, &s, &[("mul", 1), ("add", 1)]).is_empty());
    }

    #[test]
    fn early_start_is_s001() {
        let g = chain();
        // Add fires at cycle 3; the multiplier finishes at 5.
        let s = ScheduleView {
            start: vec![Some(0), Some(0), Some(0), Some(3), Some(7)],
            length: 7,
        };
        let diags = check_schedule(&g, &s, &[]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::PrematureStart && d.span == Span::Node(3)),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_start_is_s002() {
        let g = chain();
        let s = ScheduleView {
            start: vec![Some(0), Some(0), None, Some(5), Some(9)],
            length: 9,
        };
        let diags = check_schedule(&g, &s, &[]);
        assert!(
            diags.iter().any(|d| d.rule == Rule::Unscheduled),
            "{diags:?}"
        );
    }

    #[test]
    fn capacity_overflow_is_s003() {
        let mut g = Graph::new();
        let a = g.push(Node::new("Input", Domain::Ieee).with_role(Role::Source));
        let mut prods = Vec::new();
        for _ in 0..3 {
            prods.push(
                g.push(
                    Node::new("Mul", Domain::Ieee)
                        .with_args(vec![a, a], vec![Domain::Ieee, Domain::Ieee])
                        .with_latency(5)
                        .with_resource("mul"),
                ),
            );
        }
        g.push(
            Node::new("Output", Domain::Ieee)
                .with_args(vec![prods[0]], vec![Domain::Ieee])
                .with_role(Role::Sink),
        );
        let s = ScheduleView {
            start: vec![Some(0), Some(0), Some(0), Some(0), Some(5)],
            length: 5,
        };
        let diags = check_schedule(&g, &s, &[("mul", 2)]);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.rule == Rule::ResourceOverflow && d.span == Span::Cycle(0))
                .count(),
            1,
            "{diags:?}"
        );
        // With enough units the same schedule is clean.
        assert!(check_schedule(&g, &s, &[("mul", 3)]).is_empty());
    }

    #[test]
    fn understated_length_is_s004() {
        let g = chain();
        let s = ScheduleView {
            start: vec![Some(0), Some(0), Some(0), Some(5), Some(9)],
            length: 8,
        };
        let diags = check_schedule(&g, &s, &[]);
        assert!(
            diags.iter().any(|d| d.rule == Rule::LengthUnderstated),
            "{diags:?}"
        );
    }

    #[test]
    fn zero_latency_chaining_in_same_cycle_is_legal() {
        let mut g = Graph::new();
        let a = g.push(Node::new("Input", Domain::Ieee).with_role(Role::Source));
        g.push(
            Node::new("Output", Domain::Ieee)
                .with_args(vec![a], vec![Domain::Ieee])
                .with_role(Role::Sink),
        );
        let s = ScheduleView {
            start: vec![Some(0), Some(0)],
            length: 0,
        };
        assert!(check_schedule(&g, &s, &[]).is_empty());
    }
}
