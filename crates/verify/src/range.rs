//! Value-range abstract interpretation — the `R*` rules and the
//! datapath-specific width proofs.
//!
//! The `W*` rules size a carry-save format for the *worst case*: any
//! binary64 value may arrive at any port, so the alignment window must
//! absorb the full exponent range. Real datapaths are narrower. This
//! pass propagates an interval + NaN-reachability domain from optional
//! `in x [lo, hi];` declarations through a [`SourceView`] and derives:
//!
//! * **R001** (warning) — an effective subtraction whose bounded operand
//!   intervals overlap: catastrophic cancellation is reachable.
//! * **R002** (warning) — overflow, NaN or division-by-zero is reachable
//!   at a node even though all of its operands are provably bounded.
//! * **R003** (error) — an invalid declaration (`NaN` bound, `lo > hi`).
//! * A **datapath exponent span**: when every node's magnitude is
//!   provably bounded, the largest alignment shift any accumulation can
//!   need — compare it against the format's worst-case
//!   [`max_shift`](crate::widths::WindowPlan::max_shift) to prove the
//!   `W001`/`W003` headroom is honored with room to spare *for this
//!   datapath* (a per-datapath refinement of the format-level proof).
//! * **Hosted fast-path safety facts** per node: whether the host-FPU
//!   result provably never lands in the NaN-or-subnormal window that
//!   forces `softfloat::batch` onto the slow path, so the executor may
//!   skip the guard (promotion is still gated by bitwise-equality tests
//!   downstream).
//!
//! All interval arithmetic rounds outward by one ulp, so the domain is
//! sound against host rounding; undeclared inputs are ⊤ (any double,
//! possibly NaN), which silently disables every refinement — datapaths
//! without declarations lint exactly as before.

use crate::diag::{Diagnostic, Rule, Span};
use crate::tape::{SourceView, SrcOp};

/// A declared input range: `in name [lo, hi];`.
#[derive(Clone, Debug, PartialEq)]
pub struct RangeDecl {
    /// Input name the bound attaches to.
    pub name: String,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

/// Interval + NaN-reachability abstract value. `lo`/`hi` are inclusive
/// and may be infinite; `may_nan` records whether NaN is reachable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
    /// Whether NaN is reachable.
    pub may_nan: bool,
}

/// Next representable double toward +∞ (saturates at +∞).
fn bump_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    f64::from_bits(if x == 0.0 {
        1 // +0 and -0 both step to the smallest positive subnormal
    } else if bits >> 63 == 0 {
        bits + 1
    } else {
        bits - 1
    })
}

/// Next representable double toward −∞ (saturates at −∞).
fn bump_down(x: f64) -> f64 {
    -bump_up(-x)
}

impl Interval {
    /// Any double, NaN included — the abstract value of an undeclared
    /// input.
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        may_nan: true,
    };

    /// The single value `v`.
    pub fn point(v: f64) -> Interval {
        Interval {
            lo: v,
            hi: v,
            may_nan: v.is_nan(),
        }
    }

    /// The declared range `[lo, hi]` (no NaN).
    pub fn bounded(lo: f64, hi: f64) -> Interval {
        Interval {
            lo,
            hi,
            may_nan: false,
        }
    }

    /// Both endpoints finite and NaN unreachable.
    pub fn is_bounded(&self) -> bool {
        !self.may_nan && self.lo.is_finite() && self.hi.is_finite()
    }

    /// Combine corner candidates into an outward-rounded hull; any NaN
    /// corner (∞−∞, 0·∞, …) collapses to ⊤.
    fn hull(corners: &[f64], may_nan: bool) -> Interval {
        if corners.iter().any(|c| c.is_nan()) {
            return Interval::TOP;
        }
        let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval {
            lo: bump_down(lo),
            hi: bump_up(hi),
            may_nan,
        }
    }

    fn contains_zero(&self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }

    fn has_infinite_endpoint(&self) -> bool {
        self.lo == f64::NEG_INFINITY || self.hi == f64::INFINITY
    }

    // add/sub evaluate all four corners even though the extremes only
    // need two: the cross corners are where an interior ∞ − ∞ (NaN)
    // surfaces, which `hull` must see to stay sound
    fn add(a: Interval, b: Interval) -> Interval {
        Interval::hull(
            &[a.lo + b.lo, a.lo + b.hi, a.hi + b.lo, a.hi + b.hi],
            a.may_nan || b.may_nan,
        )
    }

    fn sub(a: Interval, b: Interval) -> Interval {
        Interval::hull(
            &[a.lo - b.lo, a.lo - b.hi, a.hi - b.lo, a.hi - b.hi],
            a.may_nan || b.may_nan,
        )
    }

    fn mul(a: Interval, b: Interval) -> Interval {
        // 0 · ∞ is NaN but never sits on a corner when 0 and ∞ are
        // interior/endpoint of *different* operands — check explicitly
        if (a.contains_zero() && b.has_infinite_endpoint())
            || (b.contains_zero() && a.has_infinite_endpoint())
        {
            return Interval::TOP;
        }
        Interval::hull(
            &[a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi],
            a.may_nan || b.may_nan,
        )
    }

    fn div(a: Interval, b: Interval) -> Interval {
        if b.lo <= 0.0 && b.hi >= 0.0 {
            // the divisor can be zero: ±∞ and (0/0) NaN are reachable
            return Interval::TOP;
        }
        Interval::hull(
            &[a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi],
            a.may_nan || b.may_nan,
        )
    }

    fn neg(a: Interval) -> Interval {
        Interval {
            lo: -a.hi,
            hi: -a.lo,
            may_nan: a.may_nan,
        }
    }

    /// Binary exponent of the largest magnitude in the interval; `None`
    /// when unbounded, NaN-tainted, or identically zero.
    pub fn max_exponent(&self) -> Option<i32> {
        if !self.is_bounded() {
            return None;
        }
        let m = self.lo.abs().max(self.hi.abs());
        if m == 0.0 {
            return None; // exact zero needs no alignment at all
        }
        Some(m.log2().floor() as i32)
    }

    /// True when every value in the interval is safe for the hosted
    /// fast path: not NaN, and either exactly zero or strictly larger
    /// in magnitude than `f64::MIN_POSITIVE` (the guard in
    /// `softfloat::batch` falls back when `r != 0 && |r| <=
    /// MIN_POSITIVE`).
    pub fn fast_path_safe(&self) -> bool {
        if self.may_nan {
            return false;
        }
        (self.lo == 0.0 && self.hi == 0.0)
            || self.lo > f64::MIN_POSITIVE
            || self.hi < -f64::MIN_POSITIVE
    }
}

/// Result of the abstract interpretation over one datapath.
#[derive(Clone, Debug)]
pub struct RangeReport {
    /// `R001`–`R003` findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-node abstract value, indexed by source node id.
    pub intervals: Vec<Interval>,
    /// Per-node hosted fast-path safety: `true` only for IEEE
    /// arithmetic nodes (`Add`/`Sub`/`Mul`/`Div`/`Neg`) whose result is
    /// provably guard-free (see [`Interval::fast_path_safe`];
    /// negation only needs NaN-freedom).
    pub fast_path_safe: Vec<bool>,
}

/// Slack added on top of the proven exponent span when bounding the
/// alignment shift a datapath can demand (one position for the carry
/// out of the wide accumulation, one for the redundant-form excess).
pub const ALIGNMENT_SLACK_BITS: i64 = 2;

impl RangeReport {
    /// Largest spread between any two nodes' maximum binary exponents,
    /// when *every* non-zero node is provably bounded. `None` as soon
    /// as one node is unbounded (an undeclared input suffices) — no
    /// refinement can be claimed then.
    pub fn exponent_span(&self) -> Option<i64> {
        let mut min_e = i32::MAX;
        let mut max_e = i32::MIN;
        for iv in &self.intervals {
            if !iv.is_bounded() {
                return None;
            }
            if let Some(e) = iv.max_exponent() {
                min_e = min_e.min(e);
                max_e = max_e.max(e);
            }
        }
        (min_e <= max_e).then_some((max_e - min_e) as i64)
    }

    /// Datapath-specific bound on the alignment shift any carry-save
    /// accumulation can require: the proven exponent span plus
    /// [`ALIGNMENT_SLACK_BITS`]. Compare against the format's
    /// worst-case [`max_shift`](crate::widths::WindowPlan::max_shift)
    /// to turn the `W001` headroom check into a per-datapath proof.
    pub fn datapath_shift_bound(&self) -> Option<i64> {
        self.exponent_span().map(|s| s + ALIGNMENT_SLACK_BITS)
    }
}

/// Propagate declared input ranges through the graph and report the
/// `R*` findings. Nodes are visited in definition order; malformed
/// forward edges are treated as ⊤ (the compile gate rejects such
/// graphs before this pass ever runs on real pipelines).
pub fn analyze_ranges(src: &SourceView, decls: &[RangeDecl]) -> RangeReport {
    let mut diagnostics = Vec::new();
    let nodes = &src.nodes;

    // ---- R003: validate the declarations themselves --------------------
    let mut bad = std::collections::HashSet::new();
    for d in decls {
        if d.lo.is_nan() || d.hi.is_nan() || d.lo > d.hi {
            bad.insert(d.name.as_str());
            let span = nodes
                .iter()
                .position(|n| matches!(&n.op, SrcOp::Input(name) if *name == d.name))
                .map_or(Span::Global, Span::Node);
            diagnostics.push(Diagnostic::error(
                Rule::InvalidRange,
                span,
                format!(
                    "declared range [{:?}, {:?}] for input {:?} is invalid (NaN bound or lo > hi)",
                    d.lo, d.hi, d.name
                ),
            ));
        }
    }
    let range_of = |name: &str| -> Interval {
        if bad.contains(name) {
            return Interval::TOP;
        }
        decls
            .iter()
            .find(|d| d.name == name)
            .map_or(Interval::TOP, |d| Interval::bounded(d.lo, d.hi))
    };

    let mut intervals: Vec<Interval> = Vec::with_capacity(nodes.len());
    let mut fast_path_safe = vec![false; nodes.len()];
    for (id, n) in nodes.iter().enumerate() {
        let arg = |k: usize| -> Interval {
            n.args
                .get(k)
                .and_then(|&a| (a < id).then(|| intervals[a]))
                .unwrap_or(Interval::TOP)
        };
        let iv = match &n.op {
            SrcOp::Input(name) => range_of(name),
            SrcOp::Const(v) => Interval::point(*v),
            SrcOp::Add => Interval::add(arg(0), arg(1)),
            SrcOp::Sub => Interval::sub(arg(0), arg(1)),
            SrcOp::Mul => Interval::mul(arg(0), arg(1)),
            SrcOp::Div => Interval::div(arg(0), arg(1)),
            SrcOp::Neg => Interval::neg(arg(0)),
            // the carry-save accumulation is exact internally; only the
            // final resolution rounds, which the outward hull absorbs
            SrcOp::Fma { negate_b, .. } => {
                let b = if *negate_b {
                    Interval::neg(arg(1))
                } else {
                    arg(1)
                };
                Interval::add(arg(0), Interval::mul(b, arg(2)))
            }
            SrcOp::IeeeToCs(_) | SrcOp::CsToIeee(_) | SrcOp::Output(_) => arg(0),
        };

        // ---- R001: reachable catastrophic cancellation -----------------
        let cancellation = match &n.op {
            SrcOp::Sub => Some((arg(0), arg(1))),
            SrcOp::Add => Some((arg(0), Interval::neg(arg(1)))),
            _ => None,
        };
        if let Some((a, b)) = cancellation {
            if a.is_bounded() && b.is_bounded() {
                let olo = a.lo.max(b.lo);
                let ohi = a.hi.min(b.hi);
                // the operands can be (nearly) equal and non-zero: the
                // difference loses all leading significant digits
                if olo <= ohi && olo.abs().max(ohi.abs()) > 0.0 {
                    diagnostics.push(Diagnostic::warning(
                        Rule::CancellationRisk,
                        Span::Node(id),
                        format!(
                            "effective subtraction of overlapping ranges \
                             [{olo:?}, {ohi:?}]: catastrophic cancellation reachable"
                        ),
                    ));
                }
            }
        }

        // ---- R002: losing boundedness the declarations promised --------
        let args_bounded = !n.args.is_empty() && (0..n.args.len()).all(|k| arg(k).is_bounded());
        if args_bounded && !iv.is_bounded() {
            diagnostics.push(Diagnostic::warning(
                Rule::RangeOverflow,
                Span::Node(id),
                format!(
                    "overflow or NaN reachable from bounded operands \
                     (result range [{:?}, {:?}]{})",
                    iv.lo,
                    iv.hi,
                    if iv.may_nan { ", NaN" } else { "" }
                ),
            ));
        }

        fast_path_safe[id] = match &n.op {
            // the hosted negation guard only checks NaN
            SrcOp::Neg => !iv.may_nan,
            SrcOp::Add | SrcOp::Sub | SrcOp::Mul | SrcOp::Div => iv.fast_path_safe(),
            _ => false,
        };
        intervals.push(iv);
    }

    RangeReport {
        diagnostics,
        intervals,
        fast_path_safe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::SrcNode;

    fn decl(name: &str, lo: f64, hi: f64) -> RangeDecl {
        RangeDecl {
            name: name.into(),
            lo,
            hi,
        }
    }

    /// `out y = a - b;`
    fn sub_graph() -> SourceView {
        SourceView {
            nodes: vec![
                SrcNode {
                    op: SrcOp::Input("a".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Input("b".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Sub,
                    args: vec![0, 1],
                },
                SrcNode {
                    op: SrcOp::Output("y".into()),
                    args: vec![2],
                },
            ],
        }
    }

    fn rules_of(r: &RangeReport) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn undeclared_inputs_are_top_and_silent() {
        let r = analyze_ranges(&sub_graph(), &[]);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.intervals[0], Interval::TOP);
        assert_eq!(r.exponent_span(), None);
        assert!(!r.fast_path_safe[2]);
    }

    #[test]
    fn overlapping_sub_is_r001() {
        let r = analyze_ranges(&sub_graph(), &[decl("a", 1.0, 2.0), decl("b", 1.5, 3.0)]);
        assert_eq!(rules_of(&r), vec!["R001"]);
    }

    #[test]
    fn disjoint_sub_is_clean_and_fast_path_safe() {
        let r = analyze_ranges(&sub_graph(), &[decl("a", 10.0, 20.0), decl("b", 1.0, 2.0)]);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        // difference is in [8-ish, 19-ish]: positive, normal, NaN-free
        assert!(r.fast_path_safe[2]);
        let span = r.exponent_span().unwrap();
        assert!(span <= 5, "span {span}");
    }

    #[test]
    fn overlap_in_magnitude_through_add_is_r001() {
        // a + b with b in a negative range mirroring a
        let src = SourceView {
            nodes: vec![
                SrcNode {
                    op: SrcOp::Input("a".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Input("b".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Add,
                    args: vec![0, 1],
                },
                SrcNode {
                    op: SrcOp::Output("y".into()),
                    args: vec![2],
                },
            ],
        };
        let r = analyze_ranges(&src, &[decl("a", 1.0, 2.0), decl("b", -2.0, -1.0)]);
        assert_eq!(rules_of(&r), vec!["R001"]);
    }

    #[test]
    fn division_by_zero_range_is_r002() {
        let src = SourceView {
            nodes: vec![
                SrcNode {
                    op: SrcOp::Input("x".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Const(1.0),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Div,
                    args: vec![1, 0],
                },
                SrcNode {
                    op: SrcOp::Output("y".into()),
                    args: vec![2],
                },
            ],
        };
        let r = analyze_ranges(&src, &[decl("x", 0.0, 1.0)]);
        assert_eq!(rules_of(&r), vec!["R002"]);
    }

    #[test]
    fn overflow_from_bounded_operands_is_r002() {
        let src = SourceView {
            nodes: vec![
                SrcNode {
                    op: SrcOp::Input("x".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Mul,
                    args: vec![0, 0],
                },
                SrcNode {
                    op: SrcOp::Output("y".into()),
                    args: vec![1],
                },
            ],
        };
        let r = analyze_ranges(&src, &[decl("x", 1.0e300, 1.0e308)]);
        assert_eq!(rules_of(&r), vec!["R002"]);
    }

    #[test]
    fn invalid_declaration_is_r003() {
        let r = analyze_ranges(&sub_graph(), &[decl("a", 2.0, 1.0)]);
        assert_eq!(rules_of(&r), vec!["R003"]);
        // the bad declaration degrades to ⊤ instead of poisoning math
        assert_eq!(r.intervals[0], Interval::TOP);
        let r = analyze_ranges(&sub_graph(), &[decl("b", f64::NAN, 1.0)]);
        assert_eq!(rules_of(&r), vec!["R003"]);
    }

    #[test]
    fn fma_propagates_like_fused_multiply_add() {
        use crate::tape::CsKind;
        // cs_to_ieee(fma(to_cs(a), b, to_cs(c))) with a,b,c in [1,2]
        let src = SourceView {
            nodes: vec![
                SrcNode {
                    op: SrcOp::Input("a".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Input("b".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::Input("c".into()),
                    args: vec![],
                },
                SrcNode {
                    op: SrcOp::IeeeToCs(CsKind::Pcs),
                    args: vec![0],
                },
                SrcNode {
                    op: SrcOp::IeeeToCs(CsKind::Pcs),
                    args: vec![2],
                },
                SrcNode {
                    op: SrcOp::Fma {
                        kind: CsKind::Pcs,
                        negate_b: false,
                    },
                    args: vec![3, 1, 4],
                },
                SrcNode {
                    op: SrcOp::CsToIeee(CsKind::Pcs),
                    args: vec![5],
                },
                SrcNode {
                    op: SrcOp::Output("y".into()),
                    args: vec![6],
                },
            ],
        };
        let decls = [
            decl("a", 1.0, 2.0),
            decl("b", 1.0, 2.0),
            decl("c", 1.0, 2.0),
        ];
        let r = analyze_ranges(&src, &decls);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        let fma = r.intervals[5];
        assert!(fma.lo >= 1.9 && fma.hi <= 6.1, "{fma:?}");
        let bound = r.datapath_shift_bound().unwrap();
        assert!(bound <= 2 + ALIGNMENT_SLACK_BITS, "{bound}");
    }

    #[test]
    fn outward_rounding_is_sound_at_the_overflow_edge() {
        assert_eq!(bump_up(f64::MAX), f64::INFINITY);
        assert_eq!(bump_down(-f64::MAX), f64::NEG_INFINITY);
        assert_eq!(bump_up(0.0), f64::from_bits(1));
        assert!(bump_down(0.0) < 0.0);
        assert_eq!(bump_up(f64::INFINITY), f64::INFINITY);
    }
}
